//! The pipelined multi-queue scheduler: independent batches kept in flight
//! across devices.
//!
//! [`crate::service::FheService::drain`] used to run strictly synchronous
//! rounds — coalesce one batch, `submit`, immediately `join` — so devices
//! idled whenever the queue held several *independent* but mutually
//! incompatible `(op, level)` groups. This module owns everything between
//! the request queue and the [`crate::exec::Executor`] seam:
//!
//! * **Planning** ([`Scheduler::plan`]) — the FIFO coalescing walk that used
//!   to live inline in `drain`: the first request with work defines the
//!   batch's `(op, level)` group, and compatible instances are taken from
//!   every matching request in submission order up to the cap.
//! * **The in-flight window** ([`Scheduler::admit`]) — up to `depth`
//!   submitted-but-unjoined batches. A planned batch is admitted only if it
//!   is *independent* of every batch already in flight: no two in-flight
//!   batches may contain requests from the same client stream at the same
//!   ciphertext level, so chained operations on one working set always
//!   observe program order. A dependent plan reports [`Plan::Blocked`] and
//!   the window drains until its keys are released.
//! * **Deterministic joins** ([`Scheduler::complete_next`]) — handles are
//!   joined in submission order whatever order the backend finishes them
//!   in, so per-request attribution, reports and [`ServiceStats`] are
//!   **bit-identical at every depth**: pipelining changes when device work
//!   overlaps, never what a request is charged. (`try_join` harvesting via
//!   [`Scheduler::harvest`] only moves completed results into the window
//!   buffer early; consumption order is unchanged.)
//! * **The overlap clock** — per-device virtual FIFO queues that account
//!   for what pipelining actually buys. Each joined batch's shards are
//!   placed on the least-loaded virtual devices (ties to the lowest
//!   index), gang-started at the latest of (a) those devices' free times
//!   and (b) the *join frontier* — the completion time of the newest batch
//!   joined before this one was admitted, which is exactly the window
//!   constraint: batch `k` cannot start before batch `k − depth`
//!   completed. At `depth = 1` the frontier serializes every batch and the
//!   overlap clock reproduces the serial clock bit-for-bit; at larger
//!   depths narrow independent batches land on idle devices and
//!   [`Scheduler::elapsed_us`] (the makespan) falls below the busy time.
//!
//! # Out-of-order scoreboard admission
//!
//! In-order admission stalls the whole window whenever the *next serial*
//! batch is dependent — one chatty chained client collapses depth-4
//! overlap back toward 1×. The opt-in [`AdmissionMode::OutOfOrder`] mode
//! (configured through [`SchedPolicy`]) closes that gap with a scoreboard
//! modeled on GPU warp schedulers:
//!
//! * **Freeze** ([`Scheduler::freeze`]) — the exact serial planning walk
//!   runs speculatively ahead of admission, freezing up to `lookahead`
//!   planned batches into a pending scoreboard. Reservations, key-cache
//!   residency and fair-queue charges are applied at freeze time, so
//!   *batch composition is identical to in-order mode*: the walk's inputs
//!   mutate only when plans are made, never when batches complete.
//! * **Admission** ([`Scheduler::admit_pending`]) — a pending plan is
//!   *key-eligible* when its `(client, level)` keys are disjoint from
//!   every in-flight batch **and from every older pending plan** (the
//!   program-order guard: a younger batch may never overtake an older one
//!   it shares a stream with). Among eligible plans the pick follows a
//!   fixed **greedy-then-oldest** rule: prefer the plan whose `(op,
//!   level)` group matches the most recently admitted batch (oldest among
//!   matches), else the oldest eligible plan. The greedy preference
//!   resets whenever a join empties the window, which makes depth-1
//!   out-of-order admission bitwise identical to in-order.
//! * **Aging bound** — each admission bumps `bypassed` on every *older*
//!   pending plan that was key-eligible at that instant. Once any plan's
//!   `bypassed` reaches `aging_bound`, only plans at or before the oldest
//!   starving plan's serial position may admit, so the starving plan is
//!   forced through next and no plan's `bypassed` ever exceeds the bound.
//!   (Key-*blocked* plans don't age: they are not being skipped unfairly,
//!   they are waiting on program order.)
//! * **Submission-ordered settles** ([`Scheduler::join_next`] /
//!   [`Scheduler::drain_settleable`]) — joins still pop the window front
//!   (admission order), but finished batches park in a reorder buffer and
//!   settle strictly in *serial plan order*. Attribution, reports and
//!   [`ServiceStats`] therefore fold in exactly the in-order sequence and
//!   stay **bit-identical to in-order mode at every depth and worker
//!   count** — reordering changes when device work overlaps, never what a
//!   request is charged.
//!
//! The *request-accounting* clock (queue latency, `busy_us`, ops/s) is
//! deliberately left on the serial reference semantics so reports and
//! stats stay depth-invariant; the overlap clock surfaces separately as
//! [`ServiceStats`] `elapsed_us` / `overlap_fraction` /
//! `pipelined_ops_per_second` — the honest schedule-level throughput the
//! `fig11_pipeline` and `fig13_ooo_window` benches pin.
//!
//! [`ServiceStats`]: crate::service::ServiceStats

use crate::api::FheOp;
use crate::exec::{BatchResult, ExecHandle, Executor};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Default scoreboard lookahead (pending plans) for out-of-order mode.
pub const DEFAULT_LOOKAHEAD: usize = 8;

/// Default aging bound (bypasses before a plan must be admitted next).
pub const DEFAULT_AGING_BOUND: usize = 4;

/// Window-admission discipline: the order in which planned batches enter
/// the in-flight window.
///
/// Both modes produce **bit-identical reports and stats** for the same
/// submitted stream: out-of-order admission reorders only the overlap
/// clock's schedule, never batch composition or settlement order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdmissionMode {
    /// Strictly serial admission: a blocked head plan stalls the window
    /// until its keys release (PR 5 semantics; the default).
    #[default]
    InOrder,
    /// Scoreboard admission: the serial planning walk freezes up to
    /// `lookahead` plans ahead, and independent plans may be admitted past
    /// a blocked head under the greedy-then-oldest rule with an aging
    /// bound. See the [module docs](self).
    OutOfOrder,
}

/// The unified scheduler-policy surface: every knob that shapes how work
/// moves from the queue onto devices, in one typed value.
///
/// Unset fields resolve through the documented chain *builder → env var →
/// default* (see [`crate::api::TensorFheBuilder::sched`]); zero or
/// malformed values are hard configuration errors, never silently
/// clamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedPolicy {
    pub(crate) workers: Option<usize>,
    pub(crate) pipeline: Option<usize>,
    pub(crate) admission: Option<AdmissionMode>,
    pub(crate) lookahead: Option<usize>,
    pub(crate) aging_bound: Option<usize>,
}

impl SchedPolicy {
    /// An empty policy: every knob resolves via env var then default.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker threads (devices) — overrides `TENSORFHE_WORKERS`.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// In-flight window depth — overrides `TENSORFHE_PIPELINE`.
    #[must_use]
    pub fn pipeline_depth(mut self, n: usize) -> Self {
        self.pipeline = Some(n);
        self
    }

    /// Window-admission mode — overrides `TENSORFHE_ADMISSION`.
    #[must_use]
    pub fn admission(mut self, mode: AdmissionMode) -> Self {
        self.admission = Some(mode);
        self
    }

    /// Scoreboard lookahead (pending plans) for out-of-order mode;
    /// defaults to [`DEFAULT_LOOKAHEAD`]. Zero is a configuration error.
    #[must_use]
    pub fn lookahead(mut self, n: usize) -> Self {
        self.lookahead = Some(n);
        self
    }

    /// Aging bound (eligible bypasses before a plan must be admitted
    /// next) for out-of-order mode; defaults to [`DEFAULT_AGING_BOUND`].
    /// Zero is a configuration error.
    #[must_use]
    pub fn aging_bound(mut self, n: usize) -> Self {
        self.aging_bound = Some(n);
        self
    }
}

/// Planning view of one queue slot: what the scheduler needs to know about
/// a pending request (tombstones appear as `None` at the call site).
#[derive(Debug, Clone, Copy)]
pub struct SlotView<'a> {
    /// The requested operation.
    pub op: FheOp,
    /// Ciphertext level the operation runs at.
    pub level: usize,
    /// Instances not yet planned into any batch.
    pub remaining: usize,
    /// Client tag (the independence rule keys on `(client, level)`).
    /// Shared, not owned: planning runs once per admitted batch *plus*
    /// once per blocked attempt, so keys clone refcounts, never strings.
    pub client: &'a Arc<str>,
}

/// A coalesced batch the scheduler wants dispatched.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// The batch's operation.
    pub op: FheOp,
    /// The batch's ciphertext level.
    pub level: usize,
    /// Total instances coalesced.
    pub width: usize,
    /// `(queue index, instances)` per contributing request, in submission
    /// order. Queue indices stay valid for the plan's lifetime because the
    /// service rebases them ([`Scheduler::rebase`]) whenever it pops
    /// leading tombstones off the queue.
    pub takes: Vec<(usize, usize)>,
    /// Key-staging cost charged to this batch's critical path: the time
    /// the copy engine spends uploading non-resident switch keys before
    /// the gang can start (0.0 when every contributing session's key set
    /// is already resident, and always 0.0 for anonymous traffic). Set by
    /// the service after residency placement; the overlap clock delays
    /// the batch's gang start by exactly this amount.
    pub upload_us: f64,
    /// Whether any contributing request rides in a registered session.
    /// Set by the service during residency placement; anonymous plans
    /// must never be charged a key upload, and the schedule verifier
    /// ([`crate::sched::BatchRecord::sessioned`]) holds it to that.
    pub sessioned: bool,
    /// Independence keys — the `(client, level)` pairs of every
    /// contributing request.
    keys: BTreeSet<(Arc<str>, usize)>,
}

impl BatchPlan {
    /// The `(client, level)` independence keys of every contributing
    /// request, in key order. Exposed for the schedule verifier.
    pub fn independence_keys(&self) -> impl Iterator<Item = &(Arc<str>, usize)> {
        self.keys.iter()
    }
}

/// The structural trace of one batch through the window and the overlap
/// clock, recorded at admission and completed at join. `tensorfhe-analyze`
/// replays these records to prove the schedule well-formed: intervals
/// non-overlapping, gang starts legal, joins in admission order, uploads
/// charged only where the residency model says they exist, the
/// out-of-order priority rule and aging bound obeyed exactly, and the
/// accounting closed. Recording is always on — it is a handful of copies
/// per *batch* (not per kernel) and performs no float arithmetic of its
/// own, so the clocks it snapshots stay bit-identical with and without a
/// verifier attached.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Admission index (0-based). Batches are admitted and joined in this
    /// order. Equals [`BatchRecord::serial_seq`] under in-order admission;
    /// under out-of-order admission the two may differ, and settlement
    /// follows `serial_seq`.
    pub seq: usize,
    /// Serial plan order (0-based): the position this batch was planned
    /// at by the serial coalescing walk. Settlement (attribution) always
    /// happens in this order, which is what keeps reports bit-identical
    /// across admission modes.
    pub serial_seq: usize,
    /// Global window-event tick when the plan was frozen by the serial
    /// walk. Equals [`BatchRecord::admitted_at`] under in-order admission
    /// (planning and admission are one step); strictly earlier when the
    /// scoreboard held the plan pending.
    pub planned_at: u64,
    /// The join frontier snapshotted at freeze time (µs). The difference
    /// `frontier_us − planned_frontier_us` is the head-blocked time this
    /// batch spent pending in the scoreboard (0.0 in-order).
    pub planned_frontier_us: f64,
    /// How many younger plans were admitted past this one *while it was
    /// key-eligible*. Bounded by the scheduler's aging bound; always 0
    /// under in-order admission.
    pub bypassed: usize,
    /// The batch's operation (the greedy rule keys on `(op, level)`).
    pub op: FheOp,
    /// The batch's ciphertext level.
    pub level: usize,
    /// Global window-event tick at admission (freezes, admissions and
    /// joins share one counter, so scoreboard and window membership can
    /// be reconstructed exactly).
    pub admitted_at: u64,
    /// Global window-event tick at join.
    pub joined_at: u64,
    /// Number of batches already joined when this one was admitted; the
    /// join frontier is the max completion over exactly that prefix.
    pub joins_at_admit: usize,
    /// The join frontier snapshotted at admission (µs).
    pub frontier_us: f64,
    /// Instances coalesced into the batch.
    pub width: usize,
    /// The `(client, level)` independence keys of the plan.
    pub keys: Vec<(Arc<str>, usize)>,
    /// Whether any contributing request rides in a registered session.
    pub sessioned: bool,
    /// Key-staging time charged before the gang start (µs).
    pub upload_us: f64,
    /// `max(frontier, chosen device free times)` — where the gang would
    /// start if every key were resident (µs).
    pub stall_us: f64,
    /// The actual gang start: `stall_us` plus the upload charge (µs).
    pub start_us: f64,
    /// The batch's wall time — its longest shard (µs).
    pub wall_us: f64,
    /// `start_us + wall_us`: when the batch's last shard retired (µs).
    pub completion_us: f64,
    /// `(device, start, duration)` per placed shard (µs). Durations are
    /// kept instead of end times so `Σ duration` matches the attributed
    /// busy time without float cancellation.
    pub placements: Vec<(usize, f64, f64)>,
}

/// Outcome of one planning walk.
#[derive(Debug)]
pub enum Plan {
    /// The next serial batch, independent of everything in flight.
    Batch(BatchPlan),
    /// The next serial batch exists but shares a `(client, level)` stream
    /// with an in-flight batch; the window must drain before it may start
    /// (program order within a client stream).
    Blocked,
    /// No request has instances left to plan.
    Empty,
}

/// How an admitted batch is backed: a deterministic result the dispatch
/// cache already knew, or a live submission to the executor.
#[derive(Debug)]
pub enum Work {
    /// Replayed from the dispatch cache (identical batches cost the same
    /// by the executor's determinism contract).
    Cached(BatchResult),
    /// Submitted for real; the handle is joined in submission order.
    Submitted(ExecHandle),
}

/// A completed batch handed back for attribution.
#[derive(Debug)]
pub struct Finished {
    /// The plan the batch was admitted under.
    pub plan: BatchPlan,
    /// The merged executor result.
    pub result: BatchResult,
    /// Whether the batch actually executed (`false` = cache replay); the
    /// service refreshes its dispatch cache only for real executions.
    pub executed: bool,
}

/// One submitted-but-unjoined batch in the window.
#[derive(Debug)]
struct InFlight {
    plan: BatchPlan,
    work: Work,
    /// Result harvested early by a non-blocking [`Executor::try_join`];
    /// consumed (in submission order) by [`Scheduler::complete_next`].
    ready: Option<BatchResult>,
    /// The join frontier at admission: completion time of the newest batch
    /// joined before this one entered the window.
    frontier_us: f64,
    /// The partially-filled trace record (clock fields land at join).
    record: BatchRecord,
}

/// A plan frozen by the serial walk but not yet admitted: the scoreboard's
/// unit of lookahead. Reservations, residency and fair-queue charges were
/// already applied when it was frozen, so the serial walk behind it sees
/// exactly the queue state in-order admission would.
#[derive(Debug)]
struct PendingPlan {
    plan: BatchPlan,
    /// Serial plan order (monotone across freezes).
    serial_seq: usize,
    /// Event tick at freeze.
    planned_at: u64,
    /// Join frontier at freeze (µs).
    planned_frontier_us: f64,
    /// Times a younger plan was admitted past this one while it was
    /// key-eligible.
    bypassed: usize,
}

/// The in-flight window plus the overlap clock (and, in out-of-order
/// mode, the pending scoreboard and the serial reorder buffer).
///
/// See the [module docs](self) for the scheduling model. The scheduler is
/// deliberately queue-agnostic: the service feeds it [`SlotView`]s and
/// applies the attribution itself, so the window logic stays independent
/// of how requests are stored.
#[derive(Debug)]
pub struct Scheduler {
    depth: usize,
    window: VecDeque<InFlight>,
    /// Union of in-flight independence keys (disjoint across batches by
    /// construction — a conflicting plan is never admitted).
    keys: BTreeSet<(Arc<str>, usize)>,
    /// Virtual free time per device (µs): when each device's FIFO queue
    /// runs dry under the overlap placement.
    free_at: Vec<f64>,
    /// Completion time of the newest joined batch (µs).
    joined_frontier: f64,
    /// Makespan of everything joined so far (µs): the virtual instant the
    /// last device went idle. Equals the serial busy time at `depth = 1`.
    elapsed_us: f64,
    /// Most batches ever simultaneously in flight.
    inflight_hwm: usize,
    /// Window-event tick: one counter over freezes, admissions *and*
    /// joins, so the trace can reconstruct exact scoreboard and window
    /// membership.
    event_tick: u64,
    /// Batches joined so far.
    joined_count: usize,
    /// Structural trace of every joined batch, in join (= admission)
    /// order; see [`BatchRecord`].
    trace: Vec<BatchRecord>,
    /// Window-admission discipline.
    admission: AdmissionMode,
    /// Scoreboard lookahead: max plans frozen but not yet admitted.
    lookahead: usize,
    /// Aging bound: max eligible bypasses before forced admission.
    aging_bound: usize,
    /// Frozen-but-unadmitted plans, in serial order.
    pending: VecDeque<PendingPlan>,
    /// Reorder buffer: joined batches keyed by `serial_seq`, waiting to
    /// settle in serial order.
    rob: BTreeMap<usize, Finished>,
    /// Plans frozen so far (the next plan's `serial_seq`).
    serial_count: usize,
    /// Batches settled so far (the next settleable `serial_seq`).
    settled_count: usize,
    /// `(op, level)` of the most recently admitted batch — the greedy
    /// preference. Reset to `None` whenever a join empties the window, so
    /// an empty window always admits the oldest plan (this is what makes
    /// depth-1 out-of-order bitwise identical to in-order).
    last_group: Option<(FheOp, usize)>,
    /// Max `|admission index − serial_seq|` over all admissions.
    reorder_max: usize,
    /// Σ over admitted batches of (admission frontier − freeze frontier):
    /// total head-blocked time spent pending in the scoreboard (µs).
    /// Exactly 0.0 under in-order admission.
    head_blocked_us: f64,
}

impl Scheduler {
    /// Creates an in-order scheduler with the given window depth over
    /// `devices` virtual device queues.
    ///
    /// # Panics
    ///
    /// Panics on a zero depth or device count (the service builder
    /// validates both and returns a typed error first).
    #[must_use]
    pub fn new(depth: usize, devices: usize) -> Self {
        Self::with_policy(
            depth,
            devices,
            AdmissionMode::InOrder,
            DEFAULT_LOOKAHEAD,
            DEFAULT_AGING_BOUND,
        )
    }

    /// Creates a scheduler with an explicit admission policy.
    ///
    /// # Panics
    ///
    /// Panics on a zero depth, device count, lookahead or aging bound
    /// (the service builder validates all four and returns a typed error
    /// first).
    #[must_use]
    pub fn with_policy(
        depth: usize,
        devices: usize,
        admission: AdmissionMode,
        lookahead: usize,
        aging_bound: usize,
    ) -> Self {
        assert!(depth > 0, "need a window of at least one batch");
        assert!(devices > 0, "need at least one device");
        assert!(lookahead > 0, "need a lookahead of at least one plan");
        assert!(
            aging_bound > 0,
            "need an aging bound of at least one bypass"
        );
        Self {
            depth,
            window: VecDeque::with_capacity(depth),
            keys: BTreeSet::new(),
            free_at: vec![0.0; devices],
            joined_frontier: 0.0,
            elapsed_us: 0.0,
            inflight_hwm: 0,
            event_tick: 0,
            joined_count: 0,
            trace: Vec::new(),
            admission,
            lookahead,
            aging_bound,
            pending: VecDeque::new(),
            rob: BTreeMap::new(),
            serial_count: 0,
            settled_count: 0,
            last_group: None,
            reorder_max: 0,
            head_blocked_us: 0.0,
        }
    }

    /// The structural trace of every joined batch, in join (= admission)
    /// order. `tensorfhe-analyze::verify` consumes this.
    #[must_use]
    pub fn trace(&self) -> &[BatchRecord] {
        &self.trace
    }

    /// Configured window depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Configured admission mode.
    #[must_use]
    pub fn admission(&self) -> AdmissionMode {
        self.admission
    }

    /// Configured scoreboard lookahead.
    #[must_use]
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// Configured aging bound.
    #[must_use]
    pub fn aging_bound(&self) -> usize {
        self.aging_bound
    }

    /// Max `|admission index − serial plan index|` observed so far: how
    /// far the scoreboard has actually reordered admissions.
    #[must_use]
    pub fn reorder_distance(&self) -> usize {
        self.reorder_max
    }

    /// Total time admitted batches spent frozen in the scoreboard behind
    /// a blocked head (µs). Exactly 0.0 under in-order admission.
    #[must_use]
    pub fn head_blocked_us(&self) -> f64 {
        self.head_blocked_us
    }

    /// Batches currently submitted but not yet joined.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.window.len()
    }

    /// Plans currently frozen in the scoreboard but not yet admitted.
    #[must_use]
    pub fn pending_plans(&self) -> usize {
        self.pending.len()
    }

    /// Whether the scoreboard holds no speculative state: no frozen
    /// pending plans and no joined-but-unsettled batches. In-order
    /// schedulers are always idle.
    #[must_use]
    pub fn scoreboard_idle(&self) -> bool {
        self.pending.is_empty() && self.rob.is_empty()
    }

    /// Whether another batch may be admitted.
    #[must_use]
    pub fn has_room(&self) -> bool {
        self.window.len() < self.depth
    }

    /// Whether another plan may be frozen into the scoreboard.
    #[must_use]
    pub fn can_freeze(&self) -> bool {
        self.admission == AdmissionMode::OutOfOrder && self.pending.len() < self.lookahead
    }

    /// Most batches ever simultaneously in flight.
    #[must_use]
    pub fn inflight_hwm(&self) -> usize {
        self.inflight_hwm
    }

    /// Overlap-clock makespan (µs): when the last device went idle. At
    /// `depth = 1` this is bit-identical to the accumulated batch wall
    /// time; at larger depths overlapped batches pull it below that sum.
    #[must_use]
    pub fn elapsed_us(&self) -> f64 {
        self.elapsed_us
    }

    /// Operation instances currently inside in-flight batches, frozen
    /// pending plans, or joined-but-unsettled batches — everything the
    /// service has reserved out of the queue but not yet attributed.
    #[must_use]
    pub fn in_flight_ops(&self) -> usize {
        self.window.iter().map(|f| f.plan.width).sum::<usize>()
            + self.pending.iter().map(|p| p.plan.width).sum::<usize>()
            + self.rob.values().map(|f| f.plan.width).sum::<usize>()
    }

    /// The serial FIFO coalescing walk shared by every admission mode:
    /// the first slot with instances left defines the `(op, level)`
    /// group, then every matching slot contributes in submission order up
    /// to `cap` instances.
    fn plan_walk<'a, I>(cap: usize, slots: I) -> Option<BatchPlan>
    where
        I: IntoIterator<Item = (usize, Option<SlotView<'a>>)>,
    {
        let mut group: Option<(FheOp, usize)> = None;
        let mut width = 0usize;
        let mut takes: Vec<(usize, usize)> = Vec::new();
        let mut keys: BTreeSet<(Arc<str>, usize)> = BTreeSet::new();
        for (i, slot) in slots {
            let Some(s) = slot else { continue };
            if s.remaining == 0 {
                continue;
            }
            let (op, level) = *group.get_or_insert((s.op, s.level));
            if s.op != op || s.level != level {
                continue;
            }
            let take = s.remaining.min(cap - width);
            if take > 0 {
                takes.push((i, take));
                width += take;
                keys.insert((Arc::clone(s.client), s.level));
            }
            if width == cap {
                break;
            }
        }
        let (op, level) = group?;
        Some(BatchPlan {
            op,
            level,
            width,
            takes,
            upload_us: 0.0,
            sessioned: false,
            keys,
        })
    }

    /// The FIFO coalescing walk over the queue (the serial `drain`'s exact
    /// batch-formation rule): the first slot with instances left defines
    /// the `(op, level)` group, then every matching slot contributes in
    /// submission order up to `cap` instances. The planned batch is then
    /// checked against the in-flight independence keys.
    ///
    /// `slots` yields `(queue index, slot)` pairs; tombstones and
    /// fully-reserved requests pass `None` / `remaining == 0` and are
    /// skipped. Planning never mutates — the service applies the
    /// reservation itself when it admits the plan.
    pub fn plan<'a, I>(&self, cap: usize, slots: I) -> Plan
    where
        I: IntoIterator<Item = (usize, Option<SlotView<'a>>)>,
    {
        match Self::plan_walk(cap, slots) {
            None => Plan::Empty,
            Some(p) => {
                if p.keys.iter().any(|k| self.keys.contains(k)) {
                    Plan::Blocked
                } else {
                    Plan::Batch(p)
                }
            }
        }
    }

    /// The same serial coalescing walk as [`Scheduler::plan`] but without
    /// the in-flight independence check: out-of-order freezing wants the
    /// next serial plan whether or not its keys are currently busy — the
    /// scoreboard enforces independence at *admission* instead. Returns
    /// `None` when no request has instances left.
    pub fn plan_unchecked<'a, I>(&self, cap: usize, slots: I) -> Option<BatchPlan>
    where
        I: IntoIterator<Item = (usize, Option<SlotView<'a>>)>,
    {
        Self::plan_walk(cap, slots)
    }

    /// Freezes the next serial plan into the scoreboard. The caller must
    /// have applied the reservation (and residency/fair-queue charges)
    /// already, exactly as it would before an in-order admission.
    ///
    /// # Panics
    ///
    /// Panics if the scoreboard is full or the scheduler is in-order
    /// ([`Scheduler::can_freeze`] gates every freeze).
    pub fn freeze(&mut self, plan: BatchPlan) {
        assert!(self.can_freeze(), "scoreboard is full or in-order");
        let pp = PendingPlan {
            plan,
            serial_seq: self.serial_count,
            planned_at: self.event_tick,
            planned_frontier_us: self.joined_frontier,
            bypassed: 0,
        };
        self.serial_count += 1;
        self.event_tick += 1;
        self.pending.push_back(pp);
    }

    /// Whether pending plan `idx` is key-eligible: disjoint from every
    /// in-flight batch *and* from every older pending plan (the
    /// program-order guard).
    fn keys_eligible(&self, idx: usize) -> bool {
        let p = &self.pending[idx];
        if p.plan.keys.iter().any(|k| self.keys.contains(k)) {
            return false;
        }
        self.pending
            .iter()
            .take(idx)
            .all(|older| older.plan.keys.is_disjoint(&p.plan.keys))
    }

    /// The scoreboard pick: the pending index the greedy-then-oldest rule
    /// (with the aging gate) would admit next, or `None` when the window
    /// is full or nothing is eligible.
    fn pick_admissible(&self) -> Option<usize> {
        if !self.has_room() {
            return None;
        }
        let eligible: Vec<usize> = (0..self.pending.len())
            .filter(|&i| self.keys_eligible(i))
            .collect();
        // Aging gate: once any plan has been bypassed `aging_bound`
        // times, only plans at or before the oldest starving plan's
        // serial position may admit. A starving plan is always eligible
        // (eligibility is monotone: younger admissions are key-disjoint
        // from it by the program-order guard, and joins only release
        // keys), so the gate forces it through.
        let starve_min = self
            .pending
            .iter()
            .filter(|p| p.bypassed >= self.aging_bound)
            .map(|p| p.serial_seq)
            .min();
        let gated: Vec<usize> = match starve_min {
            Some(m) => eligible
                .into_iter()
                .filter(|&i| self.pending[i].serial_seq <= m)
                .collect(),
            None => eligible,
        };
        let first = *gated.first()?;
        // Greedy: prefer the most recently admitted `(op, level)` group,
        // oldest among matches; else oldest eligible. `pending` is in
        // serial order, so index order is age order.
        if let Some(g) = self.last_group {
            if let Some(&i) = gated
                .iter()
                .find(|&&i| (self.pending[i].plan.op, self.pending[i].plan.level) == g)
            {
                return Some(i);
            }
        }
        Some(first)
    }

    /// The `(op, level, width)` of the pending plan the scoreboard would
    /// admit next, or `None` when the window is full or no pending plan
    /// is eligible. The service dispatches work for exactly this plan and
    /// then calls [`Scheduler::admit_pending`].
    #[must_use]
    pub fn peek_admissible(&self) -> Option<(FheOp, usize, usize)> {
        let i = self.pick_admissible()?;
        let p = &self.pending[i].plan;
        Some((p.op, p.level, p.width))
    }

    /// Admits the scoreboard's current pick (the plan
    /// [`Scheduler::peek_admissible`] reported) into the window, bumping
    /// the bypass count of every older pending plan that was key-eligible
    /// at this instant.
    ///
    /// # Panics
    ///
    /// Panics if no pending plan is admissible — the caller must have
    /// observed a `Some` from [`Scheduler::peek_admissible`] with no
    /// intervening scheduler mutation.
    pub fn admit_pending(&mut self, work: Work) {
        let idx = self
            .pick_admissible()
            .expect("admit_pending without an admissible plan");
        // Only key-*eligible* older plans age: a key-blocked plan is
        // waiting on program order, not being skipped unfairly — and
        // counting it would let a long dependent chain trip the aging
        // gate while unadmittable, strangling all younger admissions.
        let bumps: Vec<bool> = (0..idx).map(|i| self.keys_eligible(i)).collect();
        for (i, bump) in bumps.into_iter().enumerate() {
            if bump {
                self.pending[i].bypassed += 1;
            }
        }
        let pp = self.pending.remove(idx).expect("pick index in range");
        debug_assert!(
            pp.bypassed <= self.aging_bound,
            "aging bound violated at admission"
        );
        self.admit_at(
            pp.plan,
            work,
            pp.serial_seq,
            pp.planned_at,
            pp.planned_frontier_us,
            pp.bypassed,
        );
    }

    /// Admits a planned batch into the window (in-order admission:
    /// planning and admission are one step, so the serial index advances
    /// here and the freeze snapshot equals the admission snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the window is full ([`Scheduler::has_room`] gates every
    /// admission) — admitting past `depth` would silently void the
    /// window-constraint semantics the overlap clock models.
    pub fn admit(&mut self, plan: BatchPlan, work: Work) {
        let serial_seq = self.serial_count;
        self.serial_count += 1;
        let planned_at = self.event_tick;
        let planned_frontier_us = self.joined_frontier;
        self.admit_at(plan, work, serial_seq, planned_at, planned_frontier_us, 0);
    }

    /// The shared admission step: inserts keys, builds the trace record,
    /// pushes the batch into the window, and updates the greedy
    /// preference and reorder stats.
    fn admit_at(
        &mut self,
        plan: BatchPlan,
        work: Work,
        serial_seq: usize,
        planned_at: u64,
        planned_frontier_us: f64,
        bypassed: usize,
    ) {
        assert!(self.has_room(), "window is full");
        for k in &plan.keys {
            let fresh = self.keys.insert(k.clone());
            debug_assert!(fresh, "dependent batch admitted: {k:?}");
        }
        let seq = self.joined_count + self.window.len();
        self.reorder_max = self.reorder_max.max(seq.abs_diff(serial_seq));
        // Same monotone variable sampled at freeze and at admission, so
        // the in-order difference is exactly 0.0 and the accumulator
        // never perturbs bit-identity.
        self.head_blocked_us += self.joined_frontier - planned_frontier_us;
        let record = BatchRecord {
            seq,
            serial_seq,
            planned_at,
            planned_frontier_us,
            bypassed,
            op: plan.op,
            level: plan.level,
            admitted_at: self.event_tick,
            joined_at: 0,
            joins_at_admit: self.joined_count,
            frontier_us: self.joined_frontier,
            width: plan.width,
            keys: plan.keys.iter().cloned().collect(),
            sessioned: plan.sessioned,
            upload_us: plan.upload_us,
            stall_us: 0.0,
            start_us: 0.0,
            wall_us: 0.0,
            completion_us: 0.0,
            placements: Vec::new(),
        };
        self.event_tick += 1;
        self.last_group = Some((plan.op, plan.level));
        self.window.push_back(InFlight {
            plan,
            work,
            ready: None,
            frontier_us: self.joined_frontier,
            record,
        });
        self.inflight_hwm = self.inflight_hwm.max(self.window.len());
    }

    /// Shifts every live plan's take indices down by `popped` after the
    /// caller removed that many leading (dead) queue slots — in-flight
    /// window batches, frozen pending plans, and joined-but-unsettled
    /// batches alike. Keeping indices rebasable lets the service compact
    /// tombstones *while* batches are in flight, so a pump-driven service
    /// under sustained load reclaims its queue instead of growing a dead
    /// prefix forever.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any live take still points into the removed
    /// prefix — the caller may only pop slots no plan references.
    pub fn rebase(&mut self, popped: usize) {
        if popped == 0 {
            return;
        }
        let shift = |takes: &mut Vec<(usize, usize)>| {
            for (i, _) in takes {
                debug_assert!(*i >= popped, "popped a slot a live plan references");
                *i -= popped;
            }
        };
        for f in &mut self.window {
            shift(&mut f.plan.takes);
        }
        for p in &mut self.pending {
            shift(&mut p.plan.takes);
        }
        for f in self.rob.values_mut() {
            shift(&mut f.plan.takes);
        }
    }

    /// Opportunistically harvests already-completed submissions into the
    /// window buffer via the non-blocking [`Executor::try_join`]. Purely a
    /// latency courtesy to the backend (worker reply channels drain
    /// early); consumption order — and therefore every result and stat —
    /// is fixed by the settle path.
    pub fn harvest(&mut self, exec: &mut dyn Executor) {
        for f in &mut self.window {
            if f.ready.is_none() {
                if let Work::Submitted(h) = f.work {
                    f.ready = exec.try_join(h);
                }
            }
        }
    }

    /// Joins the *oldest* in-flight batch (blocking if it is still
    /// executing), releases its independence keys, and advances the
    /// overlap clock. Returns the batch's serial index alongside the
    /// finished work; `None` when nothing is in flight.
    fn join_front(&mut self, exec: &mut dyn Executor) -> Option<(usize, Finished)> {
        let mut inflight = self.window.pop_front()?;
        let (result, executed) = match (inflight.ready.take(), inflight.work) {
            (Some(r), _) => (r, true),
            (None, Work::Cached(r)) => (r, false),
            (None, Work::Submitted(h)) => (exec.join(h), true),
        };
        for k in &inflight.plan.keys {
            self.keys.remove(k);
        }
        let mut record = inflight.record;
        record.joined_at = self.event_tick;
        self.event_tick += 1;
        self.joined_count += 1;
        self.advance_clock(
            inflight.frontier_us,
            inflight.plan.upload_us,
            &result,
            &mut record,
        );
        let serial_seq = record.serial_seq;
        // An empty window means the next admission starts a fresh
        // schedule epoch: the greedy preference must not leak across it,
        // or depth-1 out-of-order would reorder admissions and break
        // bit-identity with in-order mode.
        if self.window.is_empty() {
            self.last_group = None;
        }
        self.trace.push(record);
        Some((
            serial_seq,
            Finished {
                plan: inflight.plan,
                result,
                executed,
            },
        ))
    }

    /// Joins the oldest in-flight batch and hands it straight back for
    /// attribution (in-order settlement: admission order *is* serial
    /// order). Returns `None` when nothing is in flight.
    pub fn complete_next(&mut self, exec: &mut dyn Executor) -> Option<Finished> {
        debug_assert!(
            self.scoreboard_idle(),
            "in-order settle with live scoreboard state"
        );
        let (serial_seq, fin) = self.join_front(exec)?;
        debug_assert_eq!(serial_seq, self.settled_count, "in-order settle reordered");
        self.settled_count += 1;
        Some(fin)
    }

    /// Joins the oldest in-flight batch into the reorder buffer
    /// (out-of-order settlement). Returns `false` when nothing was in
    /// flight. Settleable batches are then drained in serial order by
    /// [`Scheduler::drain_settleable`].
    pub fn join_next(&mut self, exec: &mut dyn Executor) -> bool {
        match self.join_front(exec) {
            Some((serial_seq, fin)) => {
                let prev = self.rob.insert(serial_seq, fin);
                debug_assert!(prev.is_none(), "duplicate serial index in reorder buffer");
                true
            }
            None => false,
        }
    }

    /// Pops every reorder-buffer batch that is next in *serial* order.
    /// Settling strictly serially is what keeps attribution folds — and
    /// therefore reports and stats — bit-identical to in-order mode.
    pub fn drain_settleable(&mut self) -> Vec<Finished> {
        let mut out = Vec::new();
        while let Some(fin) = self.rob.remove(&self.settled_count) {
            self.settled_count += 1;
            out.push(fin);
        }
        out
    }

    /// The overlap-clock step for one joined batch: place its shards on
    /// the least-loaded virtual devices, gang-start them at the latest of
    /// the join frontier and those devices' free times, and record the
    /// completion.
    ///
    /// At `depth = 1` the frontier *is* the previous batch's completion
    /// (it was joined before this batch was admitted) and every device's
    /// free time is at most that, so the start collapses to the serial
    /// clock and the makespan accumulates exactly `Σ wall` — the same
    /// float additions, in the same order, as the service's busy-time
    /// accounting.
    fn advance_clock(
        &mut self,
        frontier_us: f64,
        upload_us: f64,
        result: &BatchResult,
        record: &mut BatchRecord,
    ) {
        let mut shards: Vec<f64> = result
            .per_device_us
            .iter()
            .copied()
            .filter(|&t| t > 0.0)
            .collect();
        // Longest shard first (stable: equal shards keep device order).
        shards.sort_by(|a, b| b.partial_cmp(a).expect("shard times are finite"));
        debug_assert!(shards.len() <= self.free_at.len());
        // Least-loaded virtual devices first, ties to the lowest index.
        let mut order: Vec<usize> = (0..self.free_at.len()).collect();
        order.sort_by(|&a, &b| {
            self.free_at[a]
                .partial_cmp(&self.free_at[b])
                .expect("free times are finite")
                .then(a.cmp(&b))
        });
        let chosen = &order[..shards.len()];
        let mut start = frontier_us;
        for &d in chosen {
            start = start.max(self.free_at[d]);
        }
        record.stall_us = start;
        // Non-resident keys stall the gang on the copy engine before any
        // shard can launch. The guard keeps the anonymous/no-session path
        // bit-identical: `start + 0.0` is a float op this clock never did.
        if upload_us > 0.0 {
            start += upload_us;
        }
        // Longest shard onto the least-loaded device keeps queues level.
        for (&d, &t) in chosen.iter().zip(&shards) {
            self.free_at[d] = start + t;
            record.placements.push((d, start, t));
        }
        let completion = start + result.stats.time_us;
        record.start_us = start;
        record.wall_us = result.stats.time_us;
        record.completion_us = completion;
        self.elapsed_us = self.elapsed_us.max(completion);
        self.joined_frontier = self.joined_frontier.max(completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, OpStats, Variant};
    use crate::exec::SimExecutor;

    /// Test shorthand: leaks a tiny `Arc<str>` per call so literals can be
    /// passed where production code hands out `&Pending.client_key`.
    fn view(op: FheOp, level: usize, remaining: usize, client: &str) -> Option<SlotView<'static>> {
        let key: &'static Arc<str> = Box::leak(Box::new(Arc::from(client)));
        Some(SlotView {
            op,
            level,
            remaining,
            client: key,
        })
    }

    fn result(per_device_us: Vec<f64>) -> BatchResult {
        let wall = per_device_us.iter().copied().fold(0.0f64, f64::max);
        BatchResult {
            stats: OpStats {
                time_us: wall,
                occupancy: 0.5,
                energy_j: 1.0,
                launches: 4,
                by_kernel: vec![],
            },
            per_device_us,
        }
    }

    fn sched(depth: usize, devices: usize) -> Scheduler {
        Scheduler::new(depth, devices)
    }

    fn ooo(depth: usize, devices: usize, lookahead: usize, aging: usize) -> Scheduler {
        Scheduler::with_policy(depth, devices, AdmissionMode::OutOfOrder, lookahead, aging)
    }

    /// Plans the single-slot batch `(op, level, n, client)` without the
    /// in-flight key check and freezes it.
    fn freeze_one(s: &mut Scheduler, i: usize, op: FheOp, level: usize, client: &str) {
        let p = s
            .plan_unchecked(4, vec![(i, view(op, level, 1, client))])
            .expect("planned");
        s.freeze(p);
    }

    #[test]
    fn plan_coalesces_the_head_group_fifo() {
        let s = sched(2, 1);
        let slots = vec![
            (0usize, None),
            (1, view(FheOp::HMult, 3, 5, "a")),
            (2, view(FheOp::Rescale, 3, 9, "b")),
            (3, view(FheOp::HMult, 3, 4, "c")),
            (4, view(FheOp::HMult, 2, 8, "a")),
        ];
        let Plan::Batch(p) = s.plan(8, slots) else {
            panic!("expected a batch");
        };
        assert_eq!(p.op, FheOp::HMult);
        assert_eq!(p.level, 3);
        assert_eq!(p.width, 8);
        assert_eq!(p.takes, vec![(1, 5), (3, 3)], "cap-bounded FIFO takes");
    }

    #[test]
    fn plan_skips_fully_reserved_slots_and_reports_empty() {
        let s = sched(2, 1);
        let slots = vec![(0usize, view(FheOp::HAdd, 1, 0, "a")), (1, None)];
        assert!(matches!(s.plan(4, slots), Plan::Empty));
    }

    #[test]
    fn dependent_plans_block_until_keys_release() {
        let mut s = sched(4, 2);
        let first = {
            let Plan::Batch(p) = s.plan(4, vec![(0usize, view(FheOp::HMult, 3, 4, "a"))]) else {
                panic!("expected a batch");
            };
            p
        };
        s.admit(first, Work::Cached(result(vec![1.0, 1.0])));

        // Same client, same level, different op: program order applies.
        let chained = vec![(1usize, view(FheOp::HAdd, 3, 2, "a"))];
        assert!(matches!(s.plan(4, chained.clone()), Plan::Blocked));
        // Same client at another level, or another client at the same
        // level: independent.
        for slots in [
            vec![(1usize, view(FheOp::HAdd, 2, 2, "a"))],
            vec![(1usize, view(FheOp::HAdd, 3, 2, "b"))],
        ] {
            assert!(
                matches!(s.plan(4, slots), Plan::Batch(_)),
                "independent stream must not block"
            );
        }

        // Joining the holder releases the key.
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut exec = SimExecutor::new(cfg, 2);
        let fin = s.complete_next(&mut exec).expect("one in flight");
        assert!(!fin.executed, "cached work never touches the executor");
        assert!(matches!(s.plan(4, chained), Plan::Batch(_)));
    }

    #[test]
    fn window_depth_is_enforced() {
        let mut s = sched(2, 1);
        for i in 0..2 {
            let Plan::Batch(p) = s.plan(1, vec![(i, view(FheOp::HMult, i, 1, "x"))]) else {
                panic!("expected a batch");
            };
            s.admit(p, Work::Cached(result(vec![1.0])));
        }
        assert!(!s.has_room());
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.inflight_hwm(), 2);
        assert_eq!(s.in_flight_ops(), 2);
    }

    #[test]
    fn depth_one_overlap_clock_accumulates_serial_walls() {
        // The bit-identity cornerstone: at depth 1 the makespan is the
        // plain sum of batch wall times, by the same float additions.
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut exec = SimExecutor::new(cfg, 4);
        let mut s = sched(1, 4);
        let walls = [3.5f64, 1.25, 7.0];
        let mut serial = 0.0f64;
        for (i, &w) in walls.iter().enumerate() {
            let Plan::Batch(p) = s.plan(4, vec![(i, view(FheOp::HMult, 3, 1, "c"))]) else {
                panic!("expected a batch");
            };
            // Ragged shards: the batch still gang-starts after the
            // previous completion because the window is one deep.
            s.admit(p, Work::Cached(result(vec![w, w / 2.0, 0.0, 0.0])));
            let _ = s.complete_next(&mut exec).expect("in flight");
            serial += w;
            assert_eq!(s.elapsed_us().to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn deep_window_overlaps_narrow_batches_onto_idle_devices() {
        // Four width-1 batches on a 4-device cluster: the serial clock
        // charges 4 walls, the overlap clock one.
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut exec = SimExecutor::new(cfg, 4);
        let mut s = sched(4, 4);
        for i in 0..4usize {
            let Plan::Batch(p) = s.plan(4, vec![(i, view(FheOp::HMult, i, 1, "c"))]) else {
                panic!("expected a batch");
            };
            s.admit(p, Work::Cached(result(vec![10.0, 0.0, 0.0, 0.0])));
        }
        for _ in 0..4 {
            let _ = s.complete_next(&mut exec).expect("in flight");
        }
        assert_eq!(s.elapsed_us(), 10.0, "four batches share one wall");
        assert_eq!(s.inflight_hwm(), 4);

        // A fifth batch admitted after one join stacks behind the window
        // frontier, not at zero.
        let Plan::Batch(p) = s.plan(4, vec![(9, view(FheOp::HMult, 9, 1, "c"))]) else {
            panic!("expected a batch");
        };
        s.admit(p, Work::Cached(result(vec![10.0, 0.0, 0.0, 0.0])));
        let _ = s.complete_next(&mut exec).expect("in flight");
        assert_eq!(s.elapsed_us(), 20.0, "fifth batch queues behind the window");
    }

    #[test]
    fn scoreboard_admits_past_a_blocked_head() {
        // Chain: two same-(client, level) plans; the second is
        // key-blocked behind the first in flight. An independent tenant
        // frozen behind them admits past the blocked head.
        let mut s = ooo(4, 2, 8, 4);
        freeze_one(&mut s, 0, FheOp::HMult, 3, "chain");
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));
        freeze_one(&mut s, 1, FheOp::Rescale, 3, "chain");
        freeze_one(&mut s, 2, FheOp::HMult, 5, "tenant");
        // The chain link is key-blocked (in-flight key); the tenant is
        // eligible and admits past it.
        let (op, level, _) = s.peek_admissible().expect("tenant admissible");
        assert_eq!((op, level), (FheOp::HMult, 5));
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));
        assert_eq!(s.reorder_distance(), 1, "tenant overtook one plan");
        // The blocked chain link never aged: it was key-blocked, not
        // bypassed while eligible.
        assert_eq!(s.pending_plans(), 1);
        assert!(
            s.peek_admissible().is_none(),
            "chain link still key-blocked"
        );
    }

    #[test]
    fn greedy_prefers_the_last_admitted_group() {
        let mut s = ooo(8, 2, 8, 16);
        freeze_one(&mut s, 0, FheOp::HMult, 3, "a");
        freeze_one(&mut s, 1, FheOp::Rescale, 4, "b");
        freeze_one(&mut s, 2, FheOp::HMult, 3, "c");
        // Nothing in flight, no last group: oldest eligible wins.
        let (op, level, _) = s.peek_admissible().expect("admissible");
        assert_eq!((op, level), (FheOp::HMult, 3));
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));
        // Greedy: the (HMult, 3) plan from "c" jumps the older Rescale.
        let (op, level, _) = s.peek_admissible().expect("admissible");
        assert_eq!((op, level), (FheOp::HMult, 3), "greedy group match");
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));
        assert_eq!(s.reorder_distance(), 1);
        // Bypassed while eligible: the Rescale plan aged once.
        let (op, level, _) = s.peek_admissible().expect("admissible");
        assert_eq!((op, level), (FheOp::Rescale, 4));
    }

    #[test]
    fn aging_bound_forces_the_oldest_starving_plan() {
        // Aging bound 1: one eligible bypass and the gate closes around
        // the starving plan.
        let mut s = ooo(8, 2, 8, 1);
        freeze_one(&mut s, 0, FheOp::HMult, 3, "a");
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));
        freeze_one(&mut s, 1, FheOp::Rescale, 4, "b");
        freeze_one(&mut s, 2, FheOp::HMult, 3, "c");
        // Greedy admits the (HMult, 3) group match, bypassing the
        // eligible Rescale.
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));
        // The Rescale plan hit the bound: even after freezing another
        // greedy match, the gate forces the starving plan through.
        freeze_one(&mut s, 3, FheOp::HMult, 3, "d");
        let (op, level, _) = s.peek_admissible().expect("admissible");
        assert_eq!((op, level), (FheOp::Rescale, 4), "aging gate wins");
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));
        assert_eq!(s.pending_plans(), 1, "only the last greedy match waits");
    }

    #[test]
    fn rob_settles_in_serial_order() {
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut exec = SimExecutor::new(cfg, 2);
        let mut s = ooo(4, 2, 8, 4);
        // Chain blocks serial 1 behind serial 0; tenant (serial 2)
        // admits second. Joins pop admission order (0 then 2), but
        // settles must come out 0, then — only after 1 settles — 2.
        freeze_one(&mut s, 0, FheOp::HMult, 3, "chain");
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));
        freeze_one(&mut s, 1, FheOp::Rescale, 3, "chain");
        freeze_one(&mut s, 2, FheOp::HMult, 5, "tenant");
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));

        assert!(s.join_next(&mut exec), "serial 0 joins");
        let first = s.drain_settleable();
        assert_eq!(first.len(), 1, "serial 0 settles immediately");
        // Chain link (serial 1) is now eligible and admits.
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));
        // Joins pop admission order: tenant (serial 2) joins next and
        // parks in the reorder buffer until serial 1 settles.
        assert!(s.join_next(&mut exec));
        assert!(s.drain_settleable().is_empty(), "serial 2 waits for 1");
        assert!(s.join_next(&mut exec));
        let rest = s.drain_settleable();
        assert_eq!(rest.len(), 2, "serial 1 unblocks 2");
        assert!(s.scoreboard_idle());
        assert_eq!(
            s.trace().iter().map(|r| r.serial_seq).collect::<Vec<_>>(),
            vec![0, 2, 1],
            "trace is join-ordered; serial order lives in serial_seq"
        );
        assert!(s.head_blocked_us() > 0.0, "chain link waited pending");
    }

    #[test]
    fn program_order_guard_holds_same_key_plans_back() {
        // Two same-key pending plans with nothing in flight: the younger
        // is never eligible while the older is pending, even though the
        // in-flight key set is empty.
        let mut s = ooo(4, 2, 8, 4);
        freeze_one(&mut s, 0, FheOp::HMult, 3, "a");
        freeze_one(&mut s, 1, FheOp::Rescale, 3, "a");
        let (op, _, _) = s.peek_admissible().expect("oldest admissible");
        assert_eq!(op, FheOp::HMult, "program order picks the older plan");
        s.admit_pending(Work::Cached(result(vec![1.0, 0.0])));
        assert!(
            s.peek_admissible().is_none(),
            "younger same-key plan blocked behind in-flight older"
        );
    }
}
