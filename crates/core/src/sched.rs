//! The pipelined multi-queue scheduler: independent batches kept in flight
//! across devices.
//!
//! [`crate::service::FheService::drain`] used to run strictly synchronous
//! rounds — coalesce one batch, `submit`, immediately `join` — so devices
//! idled whenever the queue held several *independent* but mutually
//! incompatible `(op, level)` groups. This module owns everything between
//! the request queue and the [`crate::exec::Executor`] seam:
//!
//! * **Planning** ([`Scheduler::plan`]) — the FIFO coalescing walk that used
//!   to live inline in `drain`: the first request with work defines the
//!   batch's `(op, level)` group, and compatible instances are taken from
//!   every matching request in submission order up to the cap.
//! * **The in-flight window** ([`Scheduler::admit`]) — up to `depth`
//!   submitted-but-unjoined batches. A planned batch is admitted only if it
//!   is *independent* of every batch already in flight: no two in-flight
//!   batches may contain requests from the same client stream at the same
//!   ciphertext level, so chained operations on one working set always
//!   observe program order. A dependent plan reports [`Plan::Blocked`] and
//!   the window drains until its keys are released.
//! * **Deterministic joins** ([`Scheduler::complete_next`]) — handles are
//!   joined in submission order whatever order the backend finishes them
//!   in, so per-request attribution, reports and [`ServiceStats`] are
//!   **bit-identical at every depth**: pipelining changes when device work
//!   overlaps, never what a request is charged. (`try_join` harvesting via
//!   [`Scheduler::harvest`] only moves completed results into the window
//!   buffer early; consumption order is unchanged.)
//! * **The overlap clock** — per-device virtual FIFO queues that account
//!   for what pipelining actually buys. Each joined batch's shards are
//!   placed on the least-loaded virtual devices (ties to the lowest
//!   index), gang-started at the latest of (a) those devices' free times
//!   and (b) the *join frontier* — the completion time of the newest batch
//!   joined before this one was admitted, which is exactly the window
//!   constraint: batch `k` cannot start before batch `k − depth`
//!   completed. At `depth = 1` the frontier serializes every batch and the
//!   overlap clock reproduces the serial clock bit-for-bit; at larger
//!   depths narrow independent batches land on idle devices and
//!   [`Scheduler::elapsed_us`] (the makespan) falls below the busy time.
//!
//! The *request-accounting* clock (queue latency, `busy_us`, ops/s) is
//! deliberately left on the serial reference semantics so reports and
//! stats stay depth-invariant; the overlap clock surfaces separately as
//! [`ServiceStats`] `elapsed_us` / `overlap_fraction` /
//! `pipelined_ops_per_second` — the honest schedule-level throughput the
//! `fig11_pipeline` bench pins.
//!
//! [`ServiceStats`]: crate::service::ServiceStats

use crate::api::FheOp;
use crate::exec::{BatchResult, ExecHandle, Executor};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Planning view of one queue slot: what the scheduler needs to know about
/// a pending request (tombstones appear as `None` at the call site).
#[derive(Debug, Clone, Copy)]
pub struct SlotView<'a> {
    /// The requested operation.
    pub op: FheOp,
    /// Ciphertext level the operation runs at.
    pub level: usize,
    /// Instances not yet planned into any batch.
    pub remaining: usize,
    /// Client tag (the independence rule keys on `(client, level)`).
    /// Shared, not owned: planning runs once per admitted batch *plus*
    /// once per blocked attempt, so keys clone refcounts, never strings.
    pub client: &'a Arc<str>,
}

/// A coalesced batch the scheduler wants dispatched.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// The batch's operation.
    pub op: FheOp,
    /// The batch's ciphertext level.
    pub level: usize,
    /// Total instances coalesced.
    pub width: usize,
    /// `(queue index, instances)` per contributing request, in submission
    /// order. Queue indices stay valid for the plan's lifetime because the
    /// service rebases them ([`Scheduler::rebase`]) whenever it pops
    /// leading tombstones off the queue.
    pub takes: Vec<(usize, usize)>,
    /// Key-staging cost charged to this batch's critical path: the time
    /// the copy engine spends uploading non-resident switch keys before
    /// the gang can start (0.0 when every contributing session's key set
    /// is already resident, and always 0.0 for anonymous traffic). Set by
    /// the service after residency placement; the overlap clock delays
    /// the batch's gang start by exactly this amount.
    pub upload_us: f64,
    /// Whether any contributing request rides in a registered session.
    /// Set by the service during residency placement; anonymous plans
    /// must never be charged a key upload, and the schedule verifier
    /// ([`crate::sched::BatchRecord::sessioned`]) holds it to that.
    pub sessioned: bool,
    /// Independence keys — the `(client, level)` pairs of every
    /// contributing request.
    keys: BTreeSet<(Arc<str>, usize)>,
}

impl BatchPlan {
    /// The `(client, level)` independence keys of every contributing
    /// request, in key order. Exposed for the schedule verifier.
    pub fn independence_keys(&self) -> impl Iterator<Item = &(Arc<str>, usize)> {
        self.keys.iter()
    }
}

/// The structural trace of one batch through the window and the overlap
/// clock, recorded at admission and completed at join. `tensorfhe-analyze`
/// replays these records to prove the schedule well-formed: intervals
/// non-overlapping, gang starts legal, joins in submission order, uploads
/// charged only where the residency model says they exist, and the
/// accounting closed. Recording is always on — it is a handful of copies
/// per *batch* (not per kernel) and performs no float arithmetic of its
/// own, so the clocks it snapshots stay bit-identical with and without a
/// verifier attached.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Submission index (0-based). Batches are admitted, joined, and
    /// settled in this order.
    pub seq: usize,
    /// Global window-event tick at admission (admissions and joins share
    /// one counter, so window membership can be reconstructed exactly).
    pub admitted_at: u64,
    /// Global window-event tick at join.
    pub joined_at: u64,
    /// Number of batches already joined when this one was admitted; the
    /// join frontier is the max completion over exactly that prefix.
    pub joins_at_admit: usize,
    /// The join frontier snapshotted at admission (µs).
    pub frontier_us: f64,
    /// Instances coalesced into the batch.
    pub width: usize,
    /// The `(client, level)` independence keys of the plan.
    pub keys: Vec<(Arc<str>, usize)>,
    /// Whether any contributing request rides in a registered session.
    pub sessioned: bool,
    /// Key-staging time charged before the gang start (µs).
    pub upload_us: f64,
    /// `max(frontier, chosen device free times)` — where the gang would
    /// start if every key were resident (µs).
    pub stall_us: f64,
    /// The actual gang start: `stall_us` plus the upload charge (µs).
    pub start_us: f64,
    /// The batch's wall time — its longest shard (µs).
    pub wall_us: f64,
    /// `start_us + wall_us`: when the batch's last shard retired (µs).
    pub completion_us: f64,
    /// `(device, start, duration)` per placed shard (µs). Durations are
    /// kept instead of end times so `Σ duration` matches the attributed
    /// busy time without float cancellation.
    pub placements: Vec<(usize, f64, f64)>,
}

/// Outcome of one planning walk.
#[derive(Debug)]
pub enum Plan {
    /// The next serial batch, independent of everything in flight.
    Batch(BatchPlan),
    /// The next serial batch exists but shares a `(client, level)` stream
    /// with an in-flight batch; the window must drain before it may start
    /// (program order within a client stream).
    Blocked,
    /// No request has instances left to plan.
    Empty,
}

/// How an admitted batch is backed: a deterministic result the dispatch
/// cache already knew, or a live submission to the executor.
#[derive(Debug)]
pub enum Work {
    /// Replayed from the dispatch cache (identical batches cost the same
    /// by the executor's determinism contract).
    Cached(BatchResult),
    /// Submitted for real; the handle is joined in submission order.
    Submitted(ExecHandle),
}

/// A completed batch handed back for attribution.
#[derive(Debug)]
pub struct Finished {
    /// The plan the batch was admitted under.
    pub plan: BatchPlan,
    /// The merged executor result.
    pub result: BatchResult,
    /// Whether the batch actually executed (`false` = cache replay); the
    /// service refreshes its dispatch cache only for real executions.
    pub executed: bool,
}

/// One submitted-but-unjoined batch in the window.
#[derive(Debug)]
struct InFlight {
    plan: BatchPlan,
    work: Work,
    /// Result harvested early by a non-blocking [`Executor::try_join`];
    /// consumed (in submission order) by [`Scheduler::complete_next`].
    ready: Option<BatchResult>,
    /// The join frontier at admission: completion time of the newest batch
    /// joined before this one entered the window.
    frontier_us: f64,
    /// The partially-filled trace record (clock fields land at join).
    record: BatchRecord,
}

/// The in-flight window plus the overlap clock.
///
/// See the [module docs](self) for the scheduling model. The scheduler is
/// deliberately queue-agnostic: the service feeds it [`SlotView`]s and
/// applies the attribution itself, so the window logic stays independent
/// of how requests are stored.
#[derive(Debug)]
pub struct Scheduler {
    depth: usize,
    window: VecDeque<InFlight>,
    /// Union of in-flight independence keys (disjoint across batches by
    /// construction — a conflicting plan is never admitted).
    keys: BTreeSet<(Arc<str>, usize)>,
    /// Virtual free time per device (µs): when each device's FIFO queue
    /// runs dry under the overlap placement.
    free_at: Vec<f64>,
    /// Completion time of the newest joined batch (µs).
    joined_frontier: f64,
    /// Makespan of everything joined so far (µs): the virtual instant the
    /// last device went idle. Equals the serial busy time at `depth = 1`.
    elapsed_us: f64,
    /// Most batches ever simultaneously in flight.
    inflight_hwm: usize,
    /// Window-event tick: one counter over admissions *and* joins, so the
    /// trace can reconstruct exact window membership.
    event_tick: u64,
    /// Batches joined so far (the next record's `seq`).
    joined_count: usize,
    /// Structural trace of every joined batch, in join (= submission)
    /// order; see [`BatchRecord`].
    trace: Vec<BatchRecord>,
}

impl Scheduler {
    /// Creates a scheduler with the given window depth over `devices`
    /// virtual device queues.
    ///
    /// # Panics
    ///
    /// Panics on a zero depth or device count (the service builder
    /// validates both and returns a typed error first).
    #[must_use]
    pub fn new(depth: usize, devices: usize) -> Self {
        assert!(depth > 0, "need a window of at least one batch");
        assert!(devices > 0, "need at least one device");
        Self {
            depth,
            window: VecDeque::with_capacity(depth),
            keys: BTreeSet::new(),
            free_at: vec![0.0; devices],
            joined_frontier: 0.0,
            elapsed_us: 0.0,
            inflight_hwm: 0,
            event_tick: 0,
            joined_count: 0,
            trace: Vec::new(),
        }
    }

    /// The structural trace of every joined batch, in join (= submission)
    /// order. `tensorfhe-analyze::verify` consumes this.
    #[must_use]
    pub fn trace(&self) -> &[BatchRecord] {
        &self.trace
    }

    /// Configured window depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Batches currently submitted but not yet joined.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.window.len()
    }

    /// Whether another batch may be admitted.
    #[must_use]
    pub fn has_room(&self) -> bool {
        self.window.len() < self.depth
    }

    /// Most batches ever simultaneously in flight.
    #[must_use]
    pub fn inflight_hwm(&self) -> usize {
        self.inflight_hwm
    }

    /// Overlap-clock makespan (µs): when the last device went idle. At
    /// `depth = 1` this is bit-identical to the accumulated batch wall
    /// time; at larger depths overlapped batches pull it below that sum.
    #[must_use]
    pub fn elapsed_us(&self) -> f64 {
        self.elapsed_us
    }

    /// Operation instances currently inside in-flight batches.
    #[must_use]
    pub fn in_flight_ops(&self) -> usize {
        self.window.iter().map(|f| f.plan.width).sum()
    }

    /// The FIFO coalescing walk over the queue (the serial `drain`'s exact
    /// batch-formation rule): the first slot with instances left defines
    /// the `(op, level)` group, then every matching slot contributes in
    /// submission order up to `cap` instances. The planned batch is then
    /// checked against the in-flight independence keys.
    ///
    /// `slots` yields `(queue index, slot)` pairs; tombstones and
    /// fully-reserved requests pass `None` / `remaining == 0` and are
    /// skipped. Planning never mutates — the service applies the
    /// reservation itself when it admits the plan.
    pub fn plan<'a, I>(&self, cap: usize, slots: I) -> Plan
    where
        I: IntoIterator<Item = (usize, Option<SlotView<'a>>)>,
    {
        let mut group: Option<(FheOp, usize)> = None;
        let mut width = 0usize;
        let mut takes: Vec<(usize, usize)> = Vec::new();
        let mut keys: BTreeSet<(Arc<str>, usize)> = BTreeSet::new();
        for (i, slot) in slots {
            let Some(s) = slot else { continue };
            if s.remaining == 0 {
                continue;
            }
            let (op, level) = *group.get_or_insert((s.op, s.level));
            if s.op != op || s.level != level {
                continue;
            }
            let take = s.remaining.min(cap - width);
            if take > 0 {
                takes.push((i, take));
                width += take;
                keys.insert((Arc::clone(s.client), s.level));
            }
            if width == cap {
                break;
            }
        }
        let Some((op, level)) = group else {
            return Plan::Empty;
        };
        if keys.iter().any(|k| self.keys.contains(k)) {
            return Plan::Blocked;
        }
        Plan::Batch(BatchPlan {
            op,
            level,
            width,
            takes,
            upload_us: 0.0,
            sessioned: false,
            keys,
        })
    }

    /// Admits a planned batch into the window.
    ///
    /// # Panics
    ///
    /// Panics if the window is full ([`Scheduler::has_room`] gates every
    /// admission) — admitting past `depth` would silently void the
    /// window-constraint semantics the overlap clock models.
    pub fn admit(&mut self, plan: BatchPlan, work: Work) {
        assert!(self.has_room(), "window is full");
        for k in &plan.keys {
            let fresh = self.keys.insert(k.clone());
            debug_assert!(fresh, "dependent batch admitted: {k:?}");
        }
        let record = BatchRecord {
            seq: self.joined_count + self.window.len(),
            admitted_at: self.event_tick,
            joined_at: 0,
            joins_at_admit: self.joined_count,
            frontier_us: self.joined_frontier,
            width: plan.width,
            keys: plan.keys.iter().cloned().collect(),
            sessioned: plan.sessioned,
            upload_us: plan.upload_us,
            stall_us: 0.0,
            start_us: 0.0,
            wall_us: 0.0,
            completion_us: 0.0,
            placements: Vec::new(),
        };
        self.event_tick += 1;
        self.window.push_back(InFlight {
            plan,
            work,
            ready: None,
            frontier_us: self.joined_frontier,
            record,
        });
        self.inflight_hwm = self.inflight_hwm.max(self.window.len());
    }

    /// Shifts every in-flight plan's take indices down by `popped` after
    /// the caller removed that many leading (dead) queue slots. Keeping
    /// indices rebasable lets the service compact tombstones *while*
    /// batches are in flight, so a pump-driven service under sustained
    /// load reclaims its queue instead of growing a dead prefix forever.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any in-flight take still points into the removed
    /// prefix — the caller may only pop slots no plan references.
    pub fn rebase(&mut self, popped: usize) {
        if popped == 0 {
            return;
        }
        for f in &mut self.window {
            for (i, _) in &mut f.plan.takes {
                debug_assert!(*i >= popped, "popped a slot an in-flight plan references");
                *i -= popped;
            }
        }
    }

    /// Opportunistically harvests already-completed submissions into the
    /// window buffer via the non-blocking [`Executor::try_join`]. Purely a
    /// latency courtesy to the backend (worker reply channels drain
    /// early); consumption order — and therefore every result and stat —
    /// is fixed by [`Scheduler::complete_next`].
    pub fn harvest(&mut self, exec: &mut dyn Executor) {
        for f in &mut self.window {
            if f.ready.is_none() {
                if let Work::Submitted(h) = f.work {
                    f.ready = exec.try_join(h);
                }
            }
        }
    }

    /// Joins the *oldest* in-flight batch (blocking if it is still
    /// executing), releases its independence keys, advances the overlap
    /// clock, and hands it back for attribution. Returns `None` when
    /// nothing is in flight.
    pub fn complete_next(&mut self, exec: &mut dyn Executor) -> Option<Finished> {
        let mut inflight = self.window.pop_front()?;
        let (result, executed) = match (inflight.ready.take(), inflight.work) {
            (Some(r), _) => (r, true),
            (None, Work::Cached(r)) => (r, false),
            (None, Work::Submitted(h)) => (exec.join(h), true),
        };
        for k in &inflight.plan.keys {
            self.keys.remove(k);
        }
        let mut record = inflight.record;
        record.joined_at = self.event_tick;
        self.event_tick += 1;
        self.joined_count += 1;
        self.advance_clock(
            inflight.frontier_us,
            inflight.plan.upload_us,
            &result,
            &mut record,
        );
        self.trace.push(record);
        Some(Finished {
            plan: inflight.plan,
            result,
            executed,
        })
    }

    /// The overlap-clock step for one joined batch: place its shards on
    /// the least-loaded virtual devices, gang-start them at the latest of
    /// the join frontier and those devices' free times, and record the
    /// completion.
    ///
    /// At `depth = 1` the frontier *is* the previous batch's completion
    /// (it was joined before this batch was admitted) and every device's
    /// free time is at most that, so the start collapses to the serial
    /// clock and the makespan accumulates exactly `Σ wall` — the same
    /// float additions, in the same order, as the service's busy-time
    /// accounting.
    fn advance_clock(
        &mut self,
        frontier_us: f64,
        upload_us: f64,
        result: &BatchResult,
        record: &mut BatchRecord,
    ) {
        let mut shards: Vec<f64> = result
            .per_device_us
            .iter()
            .copied()
            .filter(|&t| t > 0.0)
            .collect();
        // Longest shard first (stable: equal shards keep device order).
        shards.sort_by(|a, b| b.partial_cmp(a).expect("shard times are finite"));
        debug_assert!(shards.len() <= self.free_at.len());
        // Least-loaded virtual devices first, ties to the lowest index.
        let mut order: Vec<usize> = (0..self.free_at.len()).collect();
        order.sort_by(|&a, &b| {
            self.free_at[a]
                .partial_cmp(&self.free_at[b])
                .expect("free times are finite")
                .then(a.cmp(&b))
        });
        let chosen = &order[..shards.len()];
        let mut start = frontier_us;
        for &d in chosen {
            start = start.max(self.free_at[d]);
        }
        record.stall_us = start;
        // Non-resident keys stall the gang on the copy engine before any
        // shard can launch. The guard keeps the anonymous/no-session path
        // bit-identical: `start + 0.0` is a float op this clock never did.
        if upload_us > 0.0 {
            start += upload_us;
        }
        // Longest shard onto the least-loaded device keeps queues level.
        for (&d, &t) in chosen.iter().zip(&shards) {
            self.free_at[d] = start + t;
            record.placements.push((d, start, t));
        }
        let completion = start + result.stats.time_us;
        record.start_us = start;
        record.wall_us = result.stats.time_us;
        record.completion_us = completion;
        self.elapsed_us = self.elapsed_us.max(completion);
        self.joined_frontier = self.joined_frontier.max(completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, OpStats, Variant};
    use crate::exec::SimExecutor;

    /// Test shorthand: leaks a tiny `Arc<str>` per call so literals can be
    /// passed where production code hands out `&Pending.client_key`.
    fn view(op: FheOp, level: usize, remaining: usize, client: &str) -> Option<SlotView<'static>> {
        let key: &'static Arc<str> = Box::leak(Box::new(Arc::from(client)));
        Some(SlotView {
            op,
            level,
            remaining,
            client: key,
        })
    }

    fn result(per_device_us: Vec<f64>) -> BatchResult {
        let wall = per_device_us.iter().copied().fold(0.0f64, f64::max);
        BatchResult {
            stats: OpStats {
                time_us: wall,
                occupancy: 0.5,
                energy_j: 1.0,
                launches: 4,
                by_kernel: vec![],
            },
            per_device_us,
        }
    }

    fn sched(depth: usize, devices: usize) -> Scheduler {
        Scheduler::new(depth, devices)
    }

    #[test]
    fn plan_coalesces_the_head_group_fifo() {
        let s = sched(2, 1);
        let slots = vec![
            (0usize, None),
            (1, view(FheOp::HMult, 3, 5, "a")),
            (2, view(FheOp::Rescale, 3, 9, "b")),
            (3, view(FheOp::HMult, 3, 4, "c")),
            (4, view(FheOp::HMult, 2, 8, "a")),
        ];
        let Plan::Batch(p) = s.plan(8, slots) else {
            panic!("expected a batch");
        };
        assert_eq!(p.op, FheOp::HMult);
        assert_eq!(p.level, 3);
        assert_eq!(p.width, 8);
        assert_eq!(p.takes, vec![(1, 5), (3, 3)], "cap-bounded FIFO takes");
    }

    #[test]
    fn plan_skips_fully_reserved_slots_and_reports_empty() {
        let s = sched(2, 1);
        let slots = vec![(0usize, view(FheOp::HAdd, 1, 0, "a")), (1, None)];
        assert!(matches!(s.plan(4, slots), Plan::Empty));
    }

    #[test]
    fn dependent_plans_block_until_keys_release() {
        let mut s = sched(4, 2);
        let first = {
            let Plan::Batch(p) = s.plan(4, vec![(0usize, view(FheOp::HMult, 3, 4, "a"))]) else {
                panic!("expected a batch");
            };
            p
        };
        s.admit(first, Work::Cached(result(vec![1.0, 1.0])));

        // Same client, same level, different op: program order applies.
        let chained = vec![(1usize, view(FheOp::HAdd, 3, 2, "a"))];
        assert!(matches!(s.plan(4, chained.clone()), Plan::Blocked));
        // Same client at another level, or another client at the same
        // level: independent.
        for slots in [
            vec![(1usize, view(FheOp::HAdd, 2, 2, "a"))],
            vec![(1usize, view(FheOp::HAdd, 3, 2, "b"))],
        ] {
            assert!(
                matches!(s.plan(4, slots), Plan::Batch(_)),
                "independent stream must not block"
            );
        }

        // Joining the holder releases the key.
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut exec = SimExecutor::new(cfg, 2);
        let fin = s.complete_next(&mut exec).expect("one in flight");
        assert!(!fin.executed, "cached work never touches the executor");
        assert!(matches!(s.plan(4, chained), Plan::Batch(_)));
    }

    #[test]
    fn window_depth_is_enforced() {
        let mut s = sched(2, 1);
        for i in 0..2 {
            let Plan::Batch(p) = s.plan(1, vec![(i, view(FheOp::HMult, i, 1, "x"))]) else {
                panic!("expected a batch");
            };
            s.admit(p, Work::Cached(result(vec![1.0])));
        }
        assert!(!s.has_room());
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.inflight_hwm(), 2);
        assert_eq!(s.in_flight_ops(), 2);
    }

    #[test]
    fn depth_one_overlap_clock_accumulates_serial_walls() {
        // The bit-identity cornerstone: at depth 1 the makespan is the
        // plain sum of batch wall times, by the same float additions.
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut exec = SimExecutor::new(cfg, 4);
        let mut s = sched(1, 4);
        let walls = [3.5f64, 1.25, 7.0];
        let mut serial = 0.0f64;
        for (i, &w) in walls.iter().enumerate() {
            let Plan::Batch(p) = s.plan(4, vec![(i, view(FheOp::HMult, 3, 1, "c"))]) else {
                panic!("expected a batch");
            };
            // Ragged shards: the batch still gang-starts after the
            // previous completion because the window is one deep.
            s.admit(p, Work::Cached(result(vec![w, w / 2.0, 0.0, 0.0])));
            let _ = s.complete_next(&mut exec).expect("in flight");
            serial += w;
            assert_eq!(s.elapsed_us().to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn deep_window_overlaps_narrow_batches_onto_idle_devices() {
        // Four width-1 batches on a 4-device cluster: the serial clock
        // charges 4 walls, the overlap clock one.
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut exec = SimExecutor::new(cfg, 4);
        let mut s = sched(4, 4);
        for i in 0..4usize {
            let Plan::Batch(p) = s.plan(4, vec![(i, view(FheOp::HMult, i, 1, "c"))]) else {
                panic!("expected a batch");
            };
            s.admit(p, Work::Cached(result(vec![10.0, 0.0, 0.0, 0.0])));
        }
        for _ in 0..4 {
            let _ = s.complete_next(&mut exec).expect("in flight");
        }
        assert_eq!(s.elapsed_us(), 10.0, "four batches share one wall");
        assert_eq!(s.inflight_hwm(), 4);

        // A fifth batch admitted after one join stacks behind the window
        // frontier, not at zero.
        let Plan::Batch(p) = s.plan(4, vec![(9, view(FheOp::HMult, 9, 1, "c"))]) else {
            panic!("expected a batch");
        };
        s.admit(p, Work::Cached(result(vec![10.0, 0.0, 0.0, 0.0])));
        let _ = s.complete_next(&mut exec).expect("in flight");
        assert_eq!(s.elapsed_us(), 20.0, "fifth batch queues behind the window");
    }
}
