//! Multi-GPU scaling — the paper's §VII future-work extension.
//!
//! "Extending TensorFHE to the platform with multiple GPGPUs would help to
//! increase the batch size, which improves the performance of complex
//! workloads by further improving the throughput of CKKS operations."
//!
//! Operation-level batching is embarrassingly parallel across devices: a
//! batch of `B` independent ciphertext operations splits into per-device
//! shards with no cross-device communication (each operation touches only
//! its own ciphertext plus the shared, replicated key material). The only
//! costs that do not scale are the per-shard kernel-launch overhead and the
//! one-time evaluation-key broadcast, which this model charges explicitly.

use crate::engine::{Engine, EngineConfig, OpStats};
use crate::error::{CoreError, CoreResult};
use tensorfhe_ckks::{CkksParams, KernelEvent};

/// A cluster of identical simulated devices executing sharded batches.
#[derive(Debug)]
pub struct MultiGpu {
    engines: Vec<Engine>,
    /// One-time per-device key-broadcast cost already paid (µs), reported
    /// separately from steady-state throughput.
    broadcast_us: f64,
}

impl MultiGpu {
    /// Creates `devices` identical engines and charges the evaluation-key
    /// broadcast (keys are replicated once over PCIe/NVLink; we charge PCIe
    /// 4.0 ×16 ≈ 25 GB/s as the conservative path).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `devices == 0`.
    pub fn new(cfg: &EngineConfig, devices: usize, params: &CkksParams) -> CoreResult<Self> {
        if devices == 0 {
            return Err(CoreError::InvalidConfig("need at least one device".into()));
        }
        let engines = (0..devices).map(|_| Engine::new(cfg.clone())).collect();
        // Key material ≈ dnum digit keys × 2 polys × (L+1+K) limbs × N × 4 B.
        let key_bytes = params.dnum() as u64
            * 2
            * (params.max_level() as u64 + 1 + params.special_primes() as u64)
            * params.n() as u64
            * 4;
        let broadcast_us = if devices > 1 {
            key_bytes as f64 / 25e3 // 25 GB/s → µs per byte×1e-3
        } else {
            0.0
        };
        Ok(Self {
            engines,
            broadcast_us,
        })
    }

    /// Number of devices.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.engines.len()
    }

    /// One-time key-broadcast cost (µs).
    #[must_use]
    pub fn broadcast_us(&self) -> f64 {
        self.broadcast_us
    }

    /// Runs a batched operation sharded across the cluster; returns the
    /// wall time (max over devices) and the aggregate throughput.
    ///
    /// The shard split follows the paper's batching semantics: `batch`
    /// independent operations, `⌈batch/devices⌉` per device.
    pub fn run_schedule(
        &mut self,
        tag: &str,
        events: &[KernelEvent],
        batch: usize,
    ) -> MultiGpuStats {
        self.run_schedule_detailed(tag, events, batch).0
    }

    /// Like [`MultiGpu::run_schedule`], but also returns merged per-kernel
    /// statistics (summed kernel times, time-weighted occupancy, total
    /// launches) so the service layer can report cluster batches with the
    /// same fidelity as single-device ones.
    pub fn run_schedule_detailed(
        &mut self,
        tag: &str,
        events: &[KernelEvent],
        batch: usize,
    ) -> (MultiGpuStats, OpStats) {
        let devices = self.engines.len();
        let shard = batch.div_ceil(devices);
        let mut per_device: Vec<OpStats> = Vec::with_capacity(devices);
        let mut assigned = 0usize;
        for engine in &mut self.engines {
            let this = shard.min(batch - assigned);
            if this == 0 {
                break;
            }
            per_device.push(engine.run_schedule(tag, events, this));
            assigned += this;
        }
        let wall_us = per_device.iter().map(|s| s.time_us).fold(0.0f64, f64::max);
        let energy_j: f64 = per_device.iter().map(|s| s.energy_j).sum();
        let launches = per_device.iter().map(|s| s.launches).sum();
        let busy_us: f64 = per_device.iter().map(|s| s.time_us).sum();
        let occupancy = if busy_us > 0.0 {
            per_device
                .iter()
                .map(|s| s.occupancy * s.time_us)
                .sum::<f64>()
                / busy_us
        } else {
            0.0
        };
        let mut by_kernel: std::collections::BTreeMap<String, f64> = Default::default();
        for s in &per_device {
            for (k, t) in &s.by_kernel {
                *by_kernel.entry(k.clone()).or_insert(0.0) += t;
            }
        }
        let stats = MultiGpuStats {
            wall_us,
            energy_j,
            ops_per_second: if wall_us > 0.0 {
                batch as f64 / (wall_us * 1e-6)
            } else {
                0.0
            },
            devices_used: per_device.len(),
        };
        let detail = OpStats {
            time_us: wall_us,
            occupancy,
            energy_j,
            launches,
            by_kernel: by_kernel.into_iter().collect(),
        };
        (stats, detail)
    }
}

/// Result of a sharded batched operation.
#[derive(Debug, Clone, Copy)]
pub struct MultiGpuStats {
    /// Wall time of the slowest shard (µs).
    pub wall_us: f64,
    /// Total energy across devices (J).
    pub energy_j: f64,
    /// Aggregate operations per second.
    pub ops_per_second: f64,
    /// Devices that actually received work.
    pub devices_used: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Variant;
    use crate::schedule::hmult_schedule;

    fn setup(devices: usize) -> (CkksParams, MultiGpu) {
        let params = CkksParams::test_small();
        let cluster = MultiGpu::new(&EngineConfig::a100(Variant::TensorCore), devices, &params)
            .expect("non-zero device count");
        (params, cluster)
    }

    #[test]
    fn zero_devices_is_a_config_error_not_a_panic() {
        let params = CkksParams::test_small();
        let err = MultiGpu::new(&EngineConfig::a100(Variant::TensorCore), 0, &params)
            .expect_err("zero devices must be rejected");
        assert!(matches!(err, crate::error::CoreError::InvalidConfig(_)));
    }

    #[test]
    fn throughput_scales_with_devices() {
        let (params, mut one) = setup(1);
        let (_, mut four) = setup(4);
        let sched = hmult_schedule(&params, params.max_level());
        let s1 = one.run_schedule("HMULT", &sched, 128);
        let s4 = four.run_schedule("HMULT", &sched, 128);
        // Sub-linear at these small shard sizes (launch overhead per
        // shard); paper-scale batches approach linear.
        assert!(
            s4.ops_per_second > s1.ops_per_second * 2.2,
            "4 devices should give ≳2.2× throughput at toy shards: {} vs {}",
            s4.ops_per_second,
            s1.ops_per_second
        );
        assert_eq!(s4.devices_used, 4);
    }

    #[test]
    fn energy_is_conserved_not_reduced() {
        // Sharding reduces wall time, not joules.
        let (params, mut one) = setup(1);
        let (_, mut four) = setup(4);
        let sched = hmult_schedule(&params, params.max_level());
        let s1 = one.run_schedule("HMULT", &sched, 64);
        let s4 = four.run_schedule("HMULT", &sched, 64);
        let rel = (s4.energy_j - s1.energy_j).abs() / s1.energy_j;
        // Smaller shards utilise each device slightly worse.
        assert!(
            rel < 0.6,
            "energy should stay the same order across sharding: {rel}"
        );
    }

    #[test]
    fn broadcast_charged_only_for_clusters() {
        let (_, one) = setup(1);
        let (_, four) = setup(4);
        assert_eq!(one.broadcast_us(), 0.0);
        assert!(four.broadcast_us() > 0.0);
    }

    #[test]
    fn uneven_batches_use_fewer_devices() {
        let (params, mut cluster) = setup(4);
        let sched = hmult_schedule(&params, params.max_level());
        let s = cluster.run_schedule("HMULT", &sched, 2);
        assert_eq!(s.devices_used, 2);
    }
}
