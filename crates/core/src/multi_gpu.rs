//! Multi-GPU scaling — the paper's §VII future-work extension.
//!
//! "Extending TensorFHE to the platform with multiple GPGPUs would help to
//! increase the batch size, which improves the performance of complex
//! workloads by further improving the throughput of CKKS operations."
//!
//! Operation-level batching is embarrassingly parallel across devices: a
//! batch of `B` independent ciphertext operations splits into per-device
//! shards with no cross-device communication (each operation touches only
//! its own ciphertext plus the shared, replicated key material). The only
//! costs that do not scale are the per-shard kernel-launch overhead and the
//! one-time evaluation-key broadcast, which this model charges explicitly.
//!
//! Since the executor refactor this type is a thin configuration over
//! [`crate::exec`]: sharding and merging live behind the
//! [`crate::exec::Executor`] seam ([`crate::exec::shard_widths`] /
//! [`crate::exec::merge_shards`]), and [`MultiGpu::with_workers`] drives
//! the same cluster through the [`crate::exec::ThreadedPool`] — one host
//! thread per device — with bit-identical results.

use crate::engine::{EngineConfig, OpStats};
use crate::error::CoreResult;
use crate::exec::{build_executor, ExecBackend, ExecBatch, Executor};
use std::sync::Arc;
use tensorfhe_ckks::{CkksParams, KernelEvent};

/// A cluster of identical simulated devices executing sharded batches.
#[derive(Debug)]
pub struct MultiGpu {
    executor: Box<dyn Executor>,
    /// One-time per-device key-broadcast cost already paid (µs), reported
    /// separately from steady-state throughput.
    broadcast_us: f64,
}

impl MultiGpu {
    /// Creates `devices` identical engines behind a serial executor and
    /// charges the evaluation-key broadcast (keys are replicated once over
    /// PCIe/NVLink; we charge PCIe 4.0 ×16 ≈ 25 GB/s as the conservative
    /// path).
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::CoreError::InvalidConfig`] if `devices == 0`.
    pub fn new(cfg: &EngineConfig, devices: usize, params: &CkksParams) -> CoreResult<Self> {
        Self::with_workers(cfg, devices, 1, params)
    }

    /// Like [`MultiGpu::new`], but drives the cluster with `workers` host
    /// threads (one per device when `workers >= devices`). Results are
    /// bit-identical to the serial executor; only host wall-clock changes.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::CoreError::InvalidConfig`] if `devices` or
    /// `workers` is zero.
    pub fn with_workers(
        cfg: &EngineConfig,
        devices: usize,
        workers: usize,
        params: &CkksParams,
    ) -> CoreResult<Self> {
        let executor = build_executor(cfg, devices, workers, ExecBackend::Sim, 0)?;
        // Key material ≈ dnum digit keys × 2 polys × (L+1+K) limbs × N × 4 B.
        let key_bytes = params.dnum() as u64
            * 2
            * (params.max_level() as u64 + 1 + params.special_primes() as u64)
            * params.n() as u64
            * 4;
        let broadcast_us = if devices > 1 {
            key_bytes as f64 / 25e3 // 25 GB/s → µs per byte×1e-3
        } else {
            0.0
        };
        Ok(Self {
            executor,
            broadcast_us,
        })
    }

    /// Number of devices.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.executor.devices()
    }

    /// Host worker threads driving the cluster (1 = serial).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.executor.caps().workers
    }

    /// One-time key-broadcast cost (µs).
    #[must_use]
    pub fn broadcast_us(&self) -> f64 {
        self.broadcast_us
    }

    /// Runs a batched operation sharded across the cluster; returns the
    /// wall time (max over devices) and the aggregate throughput.
    ///
    /// The shard split follows the paper's batching semantics: `batch`
    /// independent operations, `⌈batch/devices⌉` per device.
    pub fn run_schedule(
        &mut self,
        tag: &str,
        events: &[KernelEvent],
        batch: usize,
    ) -> MultiGpuStats {
        self.run_schedule_detailed(tag, events, batch).0
    }

    /// Like [`MultiGpu::run_schedule`], but also returns merged per-kernel
    /// statistics (summed kernel times, time-weighted occupancy, total
    /// launches) so callers can report cluster batches with the same
    /// fidelity as single-device ones.
    pub fn run_schedule_detailed(
        &mut self,
        tag: &str,
        events: &[KernelEvent],
        batch: usize,
    ) -> (MultiGpuStats, OpStats) {
        let handle = self.executor.submit(ExecBatch {
            tag: Arc::from(tag),
            events: Arc::from(events),
            width: batch,
        });
        let result = self.executor.join(handle);
        let stats = MultiGpuStats {
            wall_us: result.stats.time_us,
            energy_j: result.stats.energy_j,
            ops_per_second: if result.stats.time_us > 0.0 {
                batch as f64 / (result.stats.time_us * 1e-6)
            } else {
                0.0
            },
            devices_used: result.devices_used(),
        };
        (stats, result.stats)
    }
}

/// Result of a sharded batched operation.
#[derive(Debug, Clone, Copy)]
pub struct MultiGpuStats {
    /// Wall time of the slowest shard (µs).
    pub wall_us: f64,
    /// Total energy across devices (J).
    pub energy_j: f64,
    /// Aggregate operations per second.
    pub ops_per_second: f64,
    /// Devices that actually received work.
    pub devices_used: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Variant;
    use crate::schedule::hmult_schedule;

    fn setup(devices: usize) -> (CkksParams, MultiGpu) {
        let params = CkksParams::test_small();
        let cluster = MultiGpu::new(&EngineConfig::a100(Variant::TensorCore), devices, &params)
            .expect("non-zero device count");
        (params, cluster)
    }

    #[test]
    fn zero_devices_is_a_config_error_not_a_panic() {
        let params = CkksParams::test_small();
        let err = MultiGpu::new(&EngineConfig::a100(Variant::TensorCore), 0, &params)
            .expect_err("zero devices must be rejected");
        assert!(matches!(err, crate::error::CoreError::InvalidConfig(_)));
    }

    #[test]
    fn throughput_scales_with_devices() {
        let (params, mut one) = setup(1);
        let (_, mut four) = setup(4);
        let sched = hmult_schedule(&params, params.max_level());
        let s1 = one.run_schedule("HMULT", &sched, 128);
        let s4 = four.run_schedule("HMULT", &sched, 128);
        // Sub-linear at these small shard sizes (launch overhead per
        // shard); paper-scale batches approach linear.
        assert!(
            s4.ops_per_second > s1.ops_per_second * 2.2,
            "4 devices should give ≳2.2× throughput at toy shards: {} vs {}",
            s4.ops_per_second,
            s1.ops_per_second
        );
        assert_eq!(s4.devices_used, 4);
    }

    #[test]
    fn energy_is_conserved_not_reduced() {
        // Sharding reduces wall time, not joules.
        let (params, mut one) = setup(1);
        let (_, mut four) = setup(4);
        let sched = hmult_schedule(&params, params.max_level());
        let s1 = one.run_schedule("HMULT", &sched, 64);
        let s4 = four.run_schedule("HMULT", &sched, 64);
        let rel = (s4.energy_j - s1.energy_j).abs() / s1.energy_j;
        // Smaller shards utilise each device slightly worse.
        assert!(
            rel < 0.6,
            "energy should stay the same order across sharding: {rel}"
        );
    }

    #[test]
    fn broadcast_charged_only_for_clusters() {
        let (_, one) = setup(1);
        let (_, four) = setup(4);
        assert_eq!(one.broadcast_us(), 0.0);
        assert!(four.broadcast_us() > 0.0);
    }

    #[test]
    fn uneven_batches_use_fewer_devices() {
        let (params, mut cluster) = setup(4);
        let sched = hmult_schedule(&params, params.max_level());
        let s = cluster.run_schedule("HMULT", &sched, 2);
        assert_eq!(s.devices_used, 2);
    }

    #[test]
    fn threaded_cluster_matches_serial_cluster() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut serial = MultiGpu::new(&cfg, 4, &params).expect("valid");
        let mut threaded = MultiGpu::with_workers(&cfg, 4, 4, &params).expect("valid");
        assert_eq!(threaded.workers(), 4);
        let sched = hmult_schedule(&params, params.max_level());
        for batch in [1usize, 17, 128] {
            let (s, d) = serial.run_schedule_detailed("HMULT", &sched, batch);
            let (t, e) = threaded.run_schedule_detailed("HMULT", &sched, batch);
            assert_eq!(s.wall_us.to_bits(), t.wall_us.to_bits());
            assert_eq!(s.energy_j.to_bits(), t.energy_j.to_bits());
            assert_eq!(s.devices_used, t.devices_used);
            assert_eq!(d.launches, e.launches);
            assert_eq!(d.by_kernel, e.by_kernel);
        }
    }
}
