//! The executor seam: "run a scheduled batch on the device(s)" as a
//! pluggable contract.
//!
//! The service layer coalesces requests into batches; *how* a batch turns
//! into device work is this module's job, behind the [`Executor`] trait:
//!
//! * [`SimExecutor`] — today's simulated launches ([`Engine`] per device),
//!   executed serially on the calling thread. One device reproduces the old
//!   single-engine service backend bit-for-bit; several devices reproduce
//!   the old `MultiGpu` sharded dispatch.
//! * [`ThreadedPool`] — the same per-device engines, owned by worker
//!   threads and fed over channels, so independent device shards of a batch
//!   simulate in parallel on the host. Results are merged in device-index
//!   order, which makes the threaded path **bit-identical** to the serial
//!   one: each device's simulator sees exactly the same launch sequence
//!   either way, and the merge folds floats in the same order.
//!
//! * [`host::HostParallelExecutor`] — the first backend that *computes*
//!   instead of simulating: worker threads execute the batched-NTT and
//!   basis-conversion GEMMs with real host arithmetic (cache-blocked
//!   Montgomery fast kernels on SIMD register tiles, or the Barrett
//!   scalar reference for comparison) at full width by default, split
//!   into work-stealing row chunks so no worker idles while another has
//!   arithmetic left — all while producing the same simulated reports as
//!   [`SimExecutor`], so host wall-clock becomes measurable without
//!   perturbing a single pinned ratio.
//!
//! Backends are selected by [`ExecBackend`] (builder `backend(..)` /
//! `TENSORFHE_BACKEND`). A real CUDA/CUTLASS (or wgpu) backend slots in by
//! implementing [`Executor`] over real streams: `submit` enqueues the
//! kernel workflow, [`Executor::join`] synchronizes and reports — the same
//! grouped-GEMM shapes the host backend drives map 1:1 onto device queues.
//! Everything above the seam — coalescing, attribution, stats — is
//! backend-agnostic.
//!
//! Determinism contract: for a fixed executor configuration, `submit`ting
//! the same sequence of batches must yield the same [`BatchResult`]s. The
//! service's dispatch cache and the CI `TENSORFHE_WORKERS` matrix both rely
//! on it. Results are furthermore *history-free*: a batch's statistics are
//! a pure function of `(tag, events, width)` and the executor
//! configuration, never of what ran before it — the pipelined scheduler
//! ([`crate::sched`]) depends on this when a batch that the serial path
//! would have served from the dispatch cache executes for real.
//!
//! Multi-outstanding contract: any number of batches may be submitted
//! before any is joined. Every backend queues work FIFO *per device*, so
//! outstanding batches resolve to exactly the results a
//! submit-join-submit-join sequence would produce; handles may be joined in
//! any order. [`Executor::try_join`] is the non-blocking form — it returns
//! `None` while the batch is still executing on the host workers, which
//! lets a scheduler keep a window of in-flight batches and harvest whichever
//! are already complete without stalling the planning loop.

use crate::engine::{Engine, EngineConfig, OpStats};
use crate::error::{CoreError, CoreResult};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use tensorfhe_ckks::KernelEvent;

pub mod host;

pub use host::{HostParallelExecutor, HostWorkStats, StealStats};

/// Which execution backend serves the batches behind the seam.
///
/// Selected on the builder (`TensorFheBuilder::backend`) or via the
/// `TENSORFHE_BACKEND` environment variable (`sim`, `host-parallel`,
/// `host-scalar`). Every backend produces bit-identical reports — the
/// host backends additionally *execute* the GEMM kernel families with real
/// arithmetic on the worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecBackend {
    /// Simulated launches only (serial or thread-pooled): the default.
    #[default]
    Sim,
    /// Real host arithmetic through the cache-blocked Montgomery fast
    /// kernels (`tensorfhe_math::gemm_fast`).
    HostParallel,
    /// Real host arithmetic through the Barrett scalar reference kernels —
    /// the baseline the fast path is measured against.
    HostScalar,
}

impl ExecBackend {
    /// The stable name used by `TENSORFHE_BACKEND`, `ServiceStats` and
    /// bench output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExecBackend::Sim => "sim",
            ExecBackend::HostParallel => "host-parallel",
            ExecBackend::HostScalar => "host-scalar",
        }
    }

    /// Parses a `TENSORFHE_BACKEND` value; `None` for unknown names.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(ExecBackend::Sim),
            "host-parallel" => Some(ExecBackend::HostParallel),
            "host-scalar" => Some(ExecBackend::HostScalar),
            _ => None,
        }
    }
}

/// A coalesced batch scheduled onto an execution backend: `width`
/// independent instances of one operation's kernel workflow.
#[derive(Debug, Clone)]
pub struct ExecBatch {
    /// Operation tag (scopes the launches in profiler output).
    pub tag: Arc<str>,
    /// The kernel workflow of one instance (shared with worker threads).
    pub events: Arc<[KernelEvent]>,
    /// Operation-level batch width.
    pub width: usize,
}

/// Opaque handle to a submitted batch, redeemed with [`Executor::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecHandle(u64);

/// The merged outcome of one executed batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Cluster-merged statistics: wall time is the slowest shard, energy /
    /// launches / per-kernel times are summed, occupancy is time-weighted.
    pub stats: OpStats,
    /// Busy time per device (µs), indexed by device; `0.0` for devices the
    /// shard split left idle. Sums to the batch's total device time.
    pub per_device_us: Vec<f64>,
}

impl BatchResult {
    /// Devices that actually received work.
    #[must_use]
    pub fn devices_used(&self) -> usize {
        self.per_device_us.iter().filter(|&&t| t > 0.0).count()
    }
}

/// Static capabilities of an execution backend.
#[derive(Debug, Clone)]
pub struct ExecCaps {
    /// Device count behind the seam.
    pub devices: usize,
    /// Host worker threads driving those devices (1 = serial).
    pub workers: usize,
    /// VRAM per device, bytes (bounds the feasible shard width).
    pub vram_bytes_per_device: u64,
    /// Aggregate board power across devices (W).
    pub power_watts: f64,
    /// Device model name, as reports print it.
    pub device_name: String,
    /// Stable backend name (`sim`, `host-parallel`, `host-scalar`).
    pub backend: &'static str,
}

/// The "run a scheduled batch on a device" contract.
///
/// `submit` hands a batch to the backend; `join` blocks until it completes
/// and returns the merged result. Implementations must be deterministic:
/// the same submission sequence yields the same results, so the serial and
/// threaded backends are interchangeable bit-for-bit.
pub trait Executor: std::fmt::Debug {
    /// Schedules a batch; the returned handle is redeemed exactly once.
    fn submit(&mut self, batch: ExecBatch) -> ExecHandle;

    /// Waits for a submitted batch and returns its merged statistics.
    ///
    /// # Panics
    ///
    /// Panics on a handle this executor never issued (or already joined).
    fn join(&mut self, handle: ExecHandle) -> BatchResult;

    /// Non-blocking [`Executor::join`]: returns the merged result if the
    /// batch has already completed, `None` if it is still executing. A
    /// `Some` consumes the handle exactly like `join`; after `None` the
    /// handle stays live and may be polled again or joined blockingly.
    ///
    /// # Panics
    ///
    /// Panics on a handle this executor never issued (or already joined).
    fn try_join(&mut self, handle: ExecHandle) -> Option<BatchResult>;

    /// Backend capabilities (device count, workers, VRAM, power).
    fn caps(&self) -> ExecCaps;

    /// Device count behind the seam.
    fn devices(&self) -> usize {
        self.caps().devices
    }

    /// Accumulated real-arithmetic work counters, for backends that
    /// execute kernels on the host ([`host::HostParallelExecutor`]).
    /// Simulation-only backends return `None`.
    fn host_work(&self) -> Option<HostWorkStats> {
        None
    }

    /// Work-stealing scheduler counters, for backends that execute real
    /// arithmetic through stealable chunks. Simulation-only backends
    /// return `None`. The counters are scheduling telemetry, **not** part
    /// of the determinism contract (except `planned_rows ==
    /// executed_rows`, work conservation).
    fn steal_stats(&self) -> Option<StealStats> {
        None
    }
}

/// Splits a batch of `width` operations across `devices` following the
/// paper's batching semantics: `⌈width/devices⌉` per device, assigned in
/// device order until the batch is exhausted. Idle devices get `0`.
#[must_use]
pub fn shard_widths(width: usize, devices: usize) -> Vec<usize> {
    let shard = width.div_ceil(devices.max(1));
    let mut widths = vec![0usize; devices];
    let mut assigned = 0usize;
    for w in &mut widths {
        let this = shard.min(width - assigned);
        if this == 0 {
            break;
        }
        *w = this;
        assigned += this;
    }
    widths
}

/// Merges per-device shard statistics into one batch result, folding in
/// device-index order so serial and threaded executors agree bit-for-bit.
///
/// On a one-device backend the single shard passes through untouched (the
/// old single-engine service numbers, with `Profiler`'s kernel-table
/// ordering); a multi-device backend always runs the cluster merge — even
/// for batches narrow enough to land on one device — so `by_kernel`
/// ordering and float rounding are consistent across batch widths within
/// one configuration (and match the old `MultiGpu` merge exactly).
#[must_use]
pub fn merge_shards(per_device: Vec<(usize, OpStats)>, devices: usize) -> BatchResult {
    let devices = per_device
        .iter()
        .map(|&(d, _)| d + 1)
        .max()
        .unwrap_or(0)
        .max(devices)
        .max(1);
    let mut per_device_us = vec![0.0f64; devices];
    for (d, s) in &per_device {
        per_device_us[*d] = s.time_us;
    }
    if devices == 1 && per_device.len() == 1 {
        let stats = per_device.into_iter().next().expect("one shard").1;
        return BatchResult {
            stats,
            per_device_us,
        };
    }
    let wall_us = per_device
        .iter()
        .map(|(_, s)| s.time_us)
        .fold(0.0f64, f64::max);
    let energy_j: f64 = per_device.iter().map(|(_, s)| s.energy_j).sum();
    let launches = per_device.iter().map(|(_, s)| s.launches).sum();
    let busy_us: f64 = per_device.iter().map(|(_, s)| s.time_us).sum();
    let occupancy = if busy_us > 0.0 {
        per_device
            .iter()
            .map(|(_, s)| s.occupancy * s.time_us)
            .sum::<f64>()
            / busy_us
    } else {
        0.0
    };
    let mut by_kernel: std::collections::BTreeMap<String, f64> = Default::default();
    for (_, s) in &per_device {
        for (k, t) in &s.by_kernel {
            *by_kernel.entry(k.clone()).or_insert(0.0) += t;
        }
    }
    BatchResult {
        stats: OpStats {
            time_us: wall_us,
            occupancy,
            energy_j,
            launches,
            by_kernel: by_kernel.into_iter().collect(),
        },
        per_device_us,
    }
}

/// Builds the executor a configuration describes. For [`ExecBackend::Sim`]:
/// serial simulated launches for one worker, a sharded thread pool
/// otherwise — simulated workers beyond the device count have nothing to
/// do (each device's launch stream is serial), so they are clamped. The
/// host backends always build a [`HostParallelExecutor`] with the
/// *unclamped* worker count (surplus workers steal real-arithmetic
/// chunks) and the given per-event real-row cap (`0` = uncapped).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for zero devices or zero workers.
pub fn build_executor(
    cfg: &EngineConfig,
    devices: usize,
    workers: usize,
    backend: ExecBackend,
    rows_cap: usize,
) -> CoreResult<Box<dyn Executor>> {
    if devices == 0 {
        return Err(CoreError::InvalidConfig("need at least one device".into()));
    }
    if workers == 0 {
        return Err(CoreError::InvalidConfig(
            "need at least one worker thread".into(),
        ));
    }
    match backend {
        ExecBackend::Sim => {
            if workers.min(devices) == 1 {
                Ok(Box::new(SimExecutor::new(cfg.clone(), devices)))
            } else {
                Ok(Box::new(ThreadedPool::new(
                    cfg.clone(),
                    devices,
                    workers.min(devices),
                )))
            }
        }
        ExecBackend::HostParallel | ExecBackend::HostScalar => Ok(Box::new(
            HostParallelExecutor::with_rows_cap(cfg.clone(), devices, workers, backend, rows_cap),
        )),
    }
}

/// Profile-friendly worker thread name: `tfhe-worker-{devices}` with the
/// owned device indices joined by `+` (one device per worker in the common
/// square configuration), so host profiles and stack dumps attribute time
/// to devices.
pub(crate) fn worker_thread_name(devices: &[usize]) -> String {
    let ids: Vec<String> = devices.iter().map(ToString::to_string).collect();
    format!("tfhe-worker-{}", ids.join("+"))
}

/// Serial executor over per-device simulated engines — today's launch path
/// behind the seam. Batches run eagerly at `submit`; `join` returns the
/// stored result.
#[derive(Debug)]
pub struct SimExecutor {
    cfg: EngineConfig,
    engines: Vec<Engine>,
    next: u64,
    // lint: ordered-ok (keyed insert/remove by handle only; never iterated)
    done: HashMap<u64, BatchResult>,
}

impl SimExecutor {
    /// Creates `devices` identical simulated engines.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero (checked by [`build_executor`];
    /// construct through it for a fallible path).
    #[must_use]
    pub fn new(cfg: EngineConfig, devices: usize) -> Self {
        assert!(devices > 0, "need at least one device");
        let engines = (0..devices).map(|_| Engine::new(cfg.clone())).collect();
        Self {
            cfg,
            engines,
            next: 0,
            done: HashMap::new(),
        }
    }
}

impl Executor for SimExecutor {
    fn submit(&mut self, batch: ExecBatch) -> ExecHandle {
        let widths = shard_widths(batch.width, self.engines.len());
        let mut per_device = Vec::new();
        for (d, (engine, &w)) in self.engines.iter_mut().zip(&widths).enumerate() {
            if w == 0 {
                continue;
            }
            per_device.push((d, engine.run_schedule(&batch.tag, &batch.events, w)));
        }
        let id = self.next;
        self.next += 1;
        self.done
            .insert(id, merge_shards(per_device, self.engines.len()));
        ExecHandle(id)
    }

    fn join(&mut self, handle: ExecHandle) -> BatchResult {
        self.done
            .remove(&handle.0)
            .expect("join of an unknown or already-joined handle")
    }

    fn try_join(&mut self, handle: ExecHandle) -> Option<BatchResult> {
        // Serial submission runs eagerly, so a live handle is always ready.
        Some(self.join(handle))
    }

    fn caps(&self) -> ExecCaps {
        ExecCaps {
            devices: self.engines.len(),
            workers: 1,
            vram_bytes_per_device: self.cfg.device.vram_bytes(),
            power_watts: self.cfg.device.power_watts * self.engines.len() as f64,
            device_name: self.cfg.device.name.clone(),
            backend: ExecBackend::Sim.label(),
        }
    }
}

/// One unit of work for a pool worker: run `shards` (pairs of global device
/// index and shard width, all owned by that worker) of a batch and reply
/// with the per-device payloads (`T` = shard statistics; the host backend
/// piggybacks its real-work counters on the same reply).
pub(crate) struct Job<T> {
    pub(crate) tag: Arc<str>,
    pub(crate) events: Arc<[KernelEvent]>,
    /// `(global_device_index, shard_width)` in increasing device order.
    pub(crate) shards: Vec<(usize, usize)>,
    pub(crate) reply: mpsc::Sender<Vec<(usize, T)>>,
}

/// An in-flight batch: the reply channel, how many worker replies the merge
/// must collect, and the replies harvested so far (so a non-blocking
/// [`Executor::try_join`] can drain partial progress without losing it).
#[derive(Debug)]
pub(crate) struct PendingBatch<T> {
    pub(crate) rx: mpsc::Receiver<Vec<(usize, T)>>,
    /// Worker replies still outstanding.
    pub(crate) awaited: usize,
    /// Per-device shard payloads harvested so far.
    pub(crate) collected: Vec<(usize, T)>,
}

impl<T> PendingBatch<T> {
    /// Harvests worker replies without blocking; `true` once every awaited
    /// reply has arrived.
    pub(crate) fn poll(&mut self) -> bool {
        while self.awaited > 0 {
            match self.rx.try_recv() {
                Ok(shards) => {
                    self.collected.extend(shards);
                    self.awaited -= 1;
                }
                Err(mpsc::TryRecvError::Empty) => return false,
                Err(mpsc::TryRecvError::Disconnected) => {
                    panic!("worker thread died mid-batch")
                }
            }
        }
        true
    }

    /// Blocks until every awaited reply has arrived.
    pub(crate) fn wait(&mut self) {
        while self.awaited > 0 {
            self.collected
                .extend(self.rx.recv().expect("worker thread died mid-batch"));
            self.awaited -= 1;
        }
    }

    /// Sorts the collected shards into device order (workers answer in
    /// completion order; downstream merges are defined in device order so
    /// results are independent of thread scheduling).
    pub(crate) fn into_device_order(mut self) -> Vec<(usize, T)> {
        self.collected.sort_by_key(|&(d, _)| d);
        self.collected
    }
}

impl PendingBatch<OpStats> {
    /// Device-order merge of the collected shards.
    fn finish(self, devices: usize) -> BatchResult {
        let collected = self.into_device_order();
        merge_shards(collected, devices)
    }
}

/// Multi-threaded sharded executor: one host worker thread per (group of)
/// device(s), each owning its simulated engines, fed over channels.
///
/// Device `d` is owned by worker `d % workers`; every batch's shard for a
/// given device runs on that device's engine in submission order, so the
/// per-device launch sequences — and therefore the simulated statistics —
/// are identical to [`SimExecutor`]'s. Parallelism buys host wall-clock
/// only; virtual time is untouched.
#[derive(Debug)]
pub struct ThreadedPool {
    cfg: EngineConfig,
    devices: usize,
    senders: Vec<mpsc::Sender<Job<OpStats>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next: u64,
    /// Outstanding submissions: receiver plus the number of worker replies
    /// the merge must wait for.
    // lint: ordered-ok (keyed insert/remove by handle only; never iterated)
    pending: HashMap<u64, PendingBatch<OpStats>>,
}

impl ThreadedPool {
    /// Spawns `workers` threads driving `devices` simulated engines.
    ///
    /// # Panics
    ///
    /// Panics if `devices` or `workers` is zero (checked by
    /// [`build_executor`]; construct through it for a fallible path).
    #[must_use]
    pub fn new(cfg: EngineConfig, devices: usize, workers: usize) -> Self {
        assert!(devices > 0, "need at least one device");
        assert!(workers > 0, "need at least one worker");
        let workers = workers.min(devices);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<Job<OpStats>>();
            let my_devices: Vec<usize> = (0..devices).filter(|d| d % workers == w).collect();
            let worker_cfg = cfg.clone();
            let handle = std::thread::Builder::new()
                .name(worker_thread_name(&my_devices))
                .spawn(move || {
                    // Engines live inside the thread: the simulator state
                    // never crosses thread boundaries, only plain results.
                    // lint: ordered-ok (keyed get_mut by device id only; never iterated)
                    let mut engines: HashMap<usize, Engine> = my_devices
                        .iter()
                        .map(|&d| (d, Engine::new(worker_cfg.clone())))
                        .collect();
                    while let Ok(job) = rx.recv() {
                        let mut out = Vec::with_capacity(job.shards.len());
                        for (d, width) in job.shards {
                            let engine = engines.get_mut(&d).expect("shard for owned device");
                            out.push((d, engine.run_schedule(&job.tag, &job.events, width)));
                        }
                        // A dropped receiver means the pool abandoned the
                        // batch; nothing to do but keep serving.
                        let _ = job.reply.send(out);
                    }
                })
                .expect("spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            cfg,
            devices,
            senders,
            handles,
            next: 0,
            pending: HashMap::new(),
        }
    }

    /// Worker thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.senders.len()
    }
}

impl Executor for ThreadedPool {
    fn submit(&mut self, batch: ExecBatch) -> ExecHandle {
        let widths = shard_widths(batch.width, self.devices);
        let workers = self.senders.len();
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut replies = 0usize;
        for (w, tx) in self.senders.iter().enumerate() {
            let shards: Vec<(usize, usize)> = widths
                .iter()
                .enumerate()
                .filter(|&(d, &width)| d % workers == w && width > 0)
                .map(|(d, &width)| (d, width))
                .collect();
            if shards.is_empty() {
                continue;
            }
            tx.send(Job {
                tag: Arc::clone(&batch.tag),
                events: Arc::clone(&batch.events),
                shards,
                reply: reply_tx.clone(),
            })
            .expect("worker thread alive");
            replies += 1;
        }
        let id = self.next;
        self.next += 1;
        self.pending.insert(
            id,
            PendingBatch {
                rx: reply_rx,
                awaited: replies,
                collected: Vec::new(),
            },
        );
        ExecHandle(id)
    }

    fn join(&mut self, handle: ExecHandle) -> BatchResult {
        let mut batch = self
            .pending
            .remove(&handle.0)
            .expect("join of an unknown or already-joined handle");
        batch.wait();
        batch.finish(self.devices)
    }

    fn try_join(&mut self, handle: ExecHandle) -> Option<BatchResult> {
        let batch = self
            .pending
            .get_mut(&handle.0)
            .expect("try_join of an unknown or already-joined handle");
        if !batch.poll() {
            return None;
        }
        let batch = self.pending.remove(&handle.0).expect("present");
        Some(batch.finish(self.devices))
    }

    fn caps(&self) -> ExecCaps {
        ExecCaps {
            devices: self.devices,
            workers: self.senders.len(),
            vram_bytes_per_device: self.cfg.device.vram_bytes(),
            power_watts: self.cfg.device.power_watts * self.devices as f64,
            device_name: self.cfg.device.name.clone(),
            backend: ExecBackend::Sim.label(),
        }
    }
}

impl Drop for ThreadedPool {
    fn drop(&mut self) {
        self.senders.clear(); // closes the channels; workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Variant;
    use crate::schedule::hmult_schedule;
    use tensorfhe_ckks::CkksParams;

    fn batch(params: &CkksParams, width: usize) -> ExecBatch {
        ExecBatch {
            tag: "HMULT".into(),
            events: hmult_schedule(params, params.max_level()).into(),
            width,
        }
    }

    fn run(exec: &mut dyn Executor, b: ExecBatch) -> BatchResult {
        let h = exec.submit(b);
        exec.join(h)
    }

    fn bits(r: &BatchResult) -> Vec<u64> {
        let mut v = vec![
            r.stats.time_us.to_bits(),
            r.stats.occupancy.to_bits(),
            r.stats.energy_j.to_bits(),
            r.stats.launches as u64,
        ];
        v.extend(r.per_device_us.iter().map(|t| t.to_bits()));
        for (k, t) in &r.stats.by_kernel {
            v.extend(k.bytes().map(u64::from));
            v.push(t.to_bits());
        }
        v
    }

    #[test]
    fn shard_widths_match_paper_semantics() {
        assert_eq!(shard_widths(128, 4), vec![32, 32, 32, 32]);
        assert_eq!(shard_widths(7, 4), vec![2, 2, 2, 1]);
        assert_eq!(shard_widths(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(shard_widths(1, 1), vec![1]);
        assert_eq!(shard_widths(0, 3), vec![0, 0, 0]);
    }

    #[test]
    fn threaded_pool_is_bit_identical_to_serial() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        for devices in [2usize, 4] {
            let mut serial = SimExecutor::new(cfg.clone(), devices);
            let mut pool = ThreadedPool::new(cfg.clone(), devices, devices);
            // A sequence of batches so simulator state evolves per device.
            for width in [1usize, 7, 16, 64, 5] {
                let hs = serial.submit(batch(&params, width));
                let hp = pool.submit(batch(&params, width));
                let rs = serial.join(hs);
                let rp = pool.join(hp);
                assert_eq!(
                    bits(&rs),
                    bits(&rp),
                    "serial vs threaded diverged at devices={devices} width={width}"
                );
            }
        }
    }

    #[test]
    fn fewer_workers_than_devices_still_bit_identical() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut serial = SimExecutor::new(cfg.clone(), 4);
        let mut pool = ThreadedPool::new(cfg, 4, 2);
        assert_eq!(pool.workers(), 2);
        for width in [64usize, 3, 9] {
            let rs = run(&mut serial, batch(&params, width));
            let rp = run(&mut pool, batch(&params, width));
            assert_eq!(bits(&rs), bits(&rp), "2-worker pool diverged");
        }
    }

    #[test]
    fn merge_passthrough_keeps_single_shard_stats() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut engine = Engine::new(cfg.clone());
        let events = hmult_schedule(&params, params.max_level());
        let want = engine.run_schedule("HMULT", &events, 8);

        let mut exec = SimExecutor::new(cfg, 1);
        let got = run(&mut exec, batch(&params, 8));
        assert_eq!(got.stats.time_us.to_bits(), want.time_us.to_bits());
        assert_eq!(got.stats.occupancy.to_bits(), want.occupancy.to_bits());
        assert_eq!(got.stats.by_kernel, want.by_kernel);
        assert_eq!(got.per_device_us, vec![want.time_us]);
    }

    #[test]
    fn per_device_time_covers_idle_devices() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut exec = SimExecutor::new(cfg, 4);
        let r = run(&mut exec, batch(&params, 2));
        assert_eq!(r.per_device_us.len(), 4);
        assert_eq!(r.devices_used(), 2);
        assert_eq!(r.per_device_us[2], 0.0);
        assert_eq!(r.per_device_us[3], 0.0);
        // Wall time is the slowest shard; total device time sums the rest.
        let total: f64 = r.per_device_us.iter().sum();
        assert!(total >= r.stats.time_us);
    }

    #[test]
    fn pool_pipelines_independent_batches() {
        // Submitting several batches before joining any must still resolve
        // each handle to its own result (FIFO per worker).
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut pool = ThreadedPool::new(cfg.clone(), 2, 2);
        let h1 = pool.submit(batch(&params, 4));
        let h2 = pool.submit(batch(&params, 32));
        let r2 = pool.join(h2);
        let r1 = pool.join(h1);
        let mut serial = SimExecutor::new(cfg, 2);
        let s1 = run(&mut serial, batch(&params, 4));
        let s2 = run(&mut serial, batch(&params, 32));
        assert_eq!(bits(&r1), bits(&s1));
        assert_eq!(bits(&r2), bits(&s2));
    }

    #[test]
    fn try_join_is_nonblocking_and_consumes_on_success() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);

        // Serial executor: submission runs eagerly, so try_join always
        // resolves immediately and matches the blocking path bit-for-bit.
        let mut serial = SimExecutor::new(cfg.clone(), 2);
        let h = serial.submit(batch(&params, 8));
        let r = serial.try_join(h).expect("eager executor is always ready");
        let mut reference = SimExecutor::new(cfg.clone(), 2);
        let want = run(&mut reference, batch(&params, 8));
        assert_eq!(bits(&r), bits(&want));

        // Threaded pool: poll until the workers finish; the harvested
        // result must equal the blocking join of an identical submission.
        let mut pool = ThreadedPool::new(cfg.clone(), 2, 2);
        let h1 = pool.submit(batch(&params, 8));
        let r1 = loop {
            if let Some(r) = pool.try_join(h1) {
                break r;
            }
            std::thread::yield_now();
        };
        assert_eq!(bits(&r1), bits(&want), "polled result diverged");
    }

    #[test]
    fn try_join_interleaves_with_multi_outstanding_submissions() {
        // The pipelined-scheduler usage pattern: several batches in flight,
        // handles polled out of order, blocking joins mixed in. Results
        // must match a serial submit-join-submit-join sequence exactly.
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let widths = [3usize, 16, 7, 1];

        let mut serial = SimExecutor::new(cfg.clone(), 2);
        let wants: Vec<BatchResult> = widths
            .iter()
            .map(|&w| run(&mut serial, batch(&params, w)))
            .collect();

        let mut pool = ThreadedPool::new(cfg, 2, 2);
        let handles: Vec<ExecHandle> = widths
            .iter()
            .map(|&w| pool.submit(batch(&params, w)))
            .collect();
        // Poll the third handle to completion, join the rest blockingly in
        // reverse submission order.
        let r2 = loop {
            if let Some(r) = pool.try_join(handles[2]) {
                break r;
            }
            std::thread::yield_now();
        };
        let r3 = pool.join(handles[3]);
        let r1 = pool.join(handles[1]);
        let r0 = pool.join(handles[0]);
        for (got, want) in [r0, r1, r2, r3].iter().zip(&wants) {
            assert_eq!(bits(got), bits(want), "out-of-order harvest diverged");
        }
    }

    #[test]
    #[should_panic(expected = "unknown or already-joined")]
    fn try_join_rejects_consumed_handles() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut exec = SimExecutor::new(cfg, 1);
        let h = exec.submit(batch(&params, 2));
        let _ = exec.join(h);
        let _ = exec.try_join(h);
    }

    #[test]
    fn caps_report_the_cluster() {
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let pool = ThreadedPool::new(cfg.clone(), 4, 4);
        let caps = pool.caps();
        assert_eq!(caps.devices, 4);
        assert_eq!(caps.workers, 4);
        assert!((caps.power_watts - 4.0 * cfg.device.power_watts).abs() < 1e-9);
        assert_eq!(caps.vram_bytes_per_device, cfg.device.vram_bytes());
    }

    #[test]
    fn build_executor_rejects_zero_configs() {
        let cfg = EngineConfig::a100(Variant::TensorCore);
        assert!(build_executor(&cfg, 0, 1, ExecBackend::Sim, 0).is_err());
        assert!(build_executor(&cfg, 1, 0, ExecBackend::Sim, 0).is_err());
        let serial = build_executor(&cfg, 1, 8, ExecBackend::Sim, 0).expect("clamped to devices");
        assert_eq!(serial.caps().workers, 1, "1 device → serial executor");
        assert_eq!(serial.caps().backend, "sim");
        assert!(serial.host_work().is_none(), "sim backends do no host work");
        assert!(serial.steal_stats().is_none(), "sim backends never steal");
        let pool = build_executor(&cfg, 4, 8, ExecBackend::Sim, 0).expect("clamped to devices");
        assert_eq!(pool.caps().workers, 4);
        // Host backends keep surplus workers (they steal) and honor the cap.
        let host = build_executor(&cfg, 4, 8, ExecBackend::HostParallel, 4).expect("host executor");
        assert_eq!(host.caps().workers, 8, "host workers are not clamped");
        assert!(host.steal_stats().is_some());
    }

    #[test]
    fn backend_labels_round_trip() {
        for b in [
            ExecBackend::Sim,
            ExecBackend::HostParallel,
            ExecBackend::HostScalar,
        ] {
            assert_eq!(ExecBackend::parse(b.label()), Some(b));
        }
        assert_eq!(ExecBackend::parse("cuda"), None);
        assert_eq!(ExecBackend::default(), ExecBackend::Sim);
    }

    #[test]
    fn worker_threads_are_named_after_their_devices() {
        assert_eq!(worker_thread_name(&[0]), "tfhe-worker-0");
        assert_eq!(worker_thread_name(&[1, 3]), "tfhe-worker-1+3");
        // The pool names real threads with it (observable via the panic
        // path and profilers; here we just pin the scheme on the spawned
        // thread itself).
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let pool = ThreadedPool::new(cfg, 4, 2);
        let names: Vec<Option<&str>> = pool.handles.iter().map(|h| h.thread().name()).collect();
        assert_eq!(
            names,
            vec![Some("tfhe-worker-0+2"), Some("tfhe-worker-1+3")],
            "worker threads must carry device-attributing names"
        );
    }
}
