//! The host-parallel backend: the first executor that *computes* instead
//! of simulating.
//!
//! [`HostParallelExecutor`] reuses the [`super::ThreadedPool`]-style job/reply
//! machinery — one worker thread per (group of) device(s), batches sharded
//! by [`shard_widths`], results merged in device order — but each worker
//! additionally **executes** the batch's GEMM-shaped kernel events with
//! real `u64` arithmetic on the host:
//!
//! * `NTT`/`INTT` events run the batched four-step pipeline
//!   (`tensorfhe_ntt::BatchedGemmNtt`) over a `B×L` row block — through
//!   the cache-blocked Montgomery fast kernels
//!   ([`ExecBackend::HostParallel`]) or the Barrett scalar reference
//!   ([`ExecBackend::HostScalar`], the baseline `fig14_host_gemm`
//!   measures against).
//! * `Conv` events run the wide basis-conversion GEMM
//!   (`BasisConvGemm`) over the event's `(L_dst × L_src) × (L_src × W)`
//!   shape, fast (`convert_block_into_mont`) or scalar.
//! * Element-wise events are counted but not executed — the issue scope
//!   is the two GEMM families, which dominate the arithmetic.
//!
//! Inputs are generated deterministically per `(device, event, row)` from
//! a splitmix64 stream, so the real-work [`HostWorkStats`] checksum is a
//! pure function of the submitted batch sequence: independent of worker
//! count, join order, and kernel flavour (fast and scalar kernels are
//! bit-identical, a property the cross-backend suite pins). Real row
//! counts are capped per event shard (`rows_cap`) so paper-scale widths
//! stay tractable on CI hosts; benches raise the cap for honest timing.
//!
//! The *simulated* reports are produced by exactly the same per-device
//! [`Engine`] launch sequences as [`super::SimExecutor`], so every report
//! and stat above the seam stays bit-identical at every workers × depth ×
//! admission point — host arithmetic buys wall-clock measurements, never
//! result drift.

use super::{
    merge_shards, shard_widths, worker_thread_name, BatchResult, ExecBackend, ExecBatch, ExecCaps,
    ExecHandle, Executor, Job, PendingBatch,
};
use crate::engine::{Engine, EngineConfig, OpStats};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use tensorfhe_ckks::KernelEvent;
use tensorfhe_math::prime::generate_ntt_primes;
use tensorfhe_ntt::{NttAlgorithm, NttBatchOps, PlanCache};

/// Default cap on real rows (NTT) / block columns-per-degree (Conv)
/// executed per kernel event shard. Keeps service-level drains at paper
/// widths tractable; benches construct the executor with a higher cap.
pub const DEFAULT_ROWS_CAP: usize = 4;

/// Counters for the real arithmetic a host backend executed, plus a
/// fold of every output residue produced.
///
/// All fields merge by wrapping addition, so totals are independent of
/// shard merge order and join order; the checksum is bit-identical across
/// worker counts and across the fast/scalar kernel flavours.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostWorkStats {
    /// Polynomial rows transformed through the batched NTT pipeline.
    pub ntt_rows: u64,
    /// Coefficient columns converted through the basis-conversion GEMM.
    pub conv_cols: u64,
    /// Elements of element-wise kernel events (counted, not executed).
    pub elems: u64,
    /// Order-insensitive fold of every output residue produced.
    pub checksum: u64,
}

impl HostWorkStats {
    /// Merges another counter set in (wrapping, commutative).
    pub fn absorb(&mut self, other: HostWorkStats) {
        self.ntt_rows = self.ntt_rows.wrapping_add(other.ntt_rows);
        self.conv_cols = self.conv_cols.wrapping_add(other.conv_cols);
        self.elems = self.elems.wrapping_add(other.elems);
        self.checksum = self.checksum.wrapping_add(other.checksum);
    }

    /// Whether any real arithmetic was executed.
    #[must_use]
    pub fn did_work(&self) -> bool {
        self.ntt_rows > 0 || self.conv_cols > 0
    }
}

/// splitmix64 step — the deterministic input stream for real kernel work.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed for `(device, event index, row)` — worker-count independent by
/// construction (devices are fixed to their data, not to their workers).
fn row_seed(device: usize, event: usize, row: usize) -> u64 {
    (device as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((event as u64) << 24)
        .wrapping_add(row as u64)
}

fn fill_row(out: &mut [u64], q: u64, seed: u64) {
    let mut state = seed;
    for x in out.iter_mut() {
        *x = splitmix(&mut state) % q;
    }
}

/// Order-insensitive residue fold (wrapping sum of a position-salted mix,
/// so swapped values do not cancel).
fn fold_checksum(acc: &mut u64, values: &[u64]) {
    for (i, &v) in values.iter().enumerate() {
        let mut state = v.wrapping_add((i as u64) << 32);
        *acc = acc.wrapping_add(splitmix(&mut state));
    }
}

/// Per-worker real-arithmetic state: the kernel flavour, the real-row
/// cap, and caches of the deterministic primes backing the work (the
/// plans themselves are shared through [`PlanCache::global`]).
struct RealWork {
    backend: ExecBackend,
    rows_cap: usize,
    // lint: ordered-ok (keyed entry by degree only; never iterated)
    ntt_primes: HashMap<usize, u64>,
    // lint: ordered-ok (keyed entry by shape only; never iterated)
    conv_primes: HashMap<(usize, usize), Vec<u64>>,
}

impl RealWork {
    fn new(backend: ExecBackend, rows_cap: usize) -> Self {
        Self {
            backend,
            rows_cap,
            ntt_primes: HashMap::new(),
            conv_primes: HashMap::new(),
        }
    }

    fn ntt_prime(&mut self, n: usize) -> u64 {
        *self
            .ntt_primes
            .entry(n)
            .or_insert_with(|| generate_ntt_primes(1, 28, n as u64)[0])
    }

    /// Executes one kernel event's real work for one device shard.
    fn run_event(
        &mut self,
        device: usize,
        event_idx: usize,
        ev: &KernelEvent,
        width: usize,
        work: &mut HostWorkStats,
    ) {
        let fast = self.backend == ExecBackend::HostParallel;
        match *ev {
            KernelEvent::Ntt { n, limbs, inverse } => {
                if n < 4 || !n.is_power_of_two() {
                    return;
                }
                let q = self.ntt_prime(n);
                let plan = PlanCache::global().get(n, q, NttAlgorithm::FourStep);
                let rows = (width * limbs).clamp(1, self.rows_cap);
                let mut block = vec![0u64; rows * n];
                for (r, row) in block.chunks_mut(n).enumerate() {
                    fill_row(row, q, row_seed(device, event_idx, r));
                }
                {
                    let mut views: Vec<&mut [u64]> = block.chunks_mut(n).collect();
                    match (fast, inverse) {
                        (true, false) => plan.forward_batch_fast(&mut views),
                        (true, true) => plan.inverse_batch_fast(&mut views),
                        (false, false) => plan.forward_batch(&mut views),
                        (false, true) => plan.inverse_batch(&mut views),
                    }
                }
                fold_checksum(&mut work.checksum, &block);
                work.ntt_rows = work.ntt_rows.wrapping_add(rows as u64);
            }
            KernelEvent::Conv { n, l_src, l_dst } => {
                if l_src == 0 || l_dst == 0 {
                    return;
                }
                let pool = self
                    .conv_primes
                    .entry((l_src, l_dst))
                    .or_insert_with(|| generate_ntt_primes(l_src + l_dst, 28, 1 << 10))
                    .clone();
                let (src, rest) = pool.split_at(l_src);
                let dst = &rest[..l_dst];
                let plan = PlanCache::global().get_bconv(src, dst);
                let cols = width.clamp(1, self.rows_cap) * n.max(1);
                let mut src_flat = vec![0u64; l_src * cols];
                for (i, (row, &q)) in src_flat.chunks_mut(cols).zip(src).enumerate() {
                    fill_row(row, q, row_seed(device, event_idx, i));
                }
                let mut out_flat = vec![0u64; l_dst * cols];
                {
                    let src_rows: Vec<&[u64]> = src_flat.chunks(cols).collect();
                    let mut out_rows: Vec<&mut [u64]> = out_flat.chunks_mut(cols).collect();
                    if fast {
                        plan.convert_block_into_mont(&src_rows, &mut out_rows);
                    } else {
                        plan.convert_block_into(&src_rows, &mut out_rows);
                    }
                }
                fold_checksum(&mut work.checksum, &out_flat);
                work.conv_cols = work.conv_cols.wrapping_add(cols as u64);
            }
            KernelEvent::HadaMult { n, limbs }
            | KernelEvent::EleAdd { n, limbs }
            | KernelEvent::EleSub { n, limbs }
            | KernelEvent::FrobeniusMap { n, limbs }
            | KernelEvent::Conjugate { n, limbs } => {
                work.elems = work.elems.wrapping_add((n * limbs * width) as u64);
            }
        }
    }
}

/// Data-parallel CPU backend: per-device worker threads that execute the
/// batched-NTT and basis-conversion GEMMs with real host arithmetic (see
/// the module docs) while reproducing [`super::SimExecutor`]'s simulated
/// reports bit-for-bit.
#[derive(Debug)]
pub struct HostParallelExecutor {
    cfg: EngineConfig,
    devices: usize,
    backend: ExecBackend,
    rows_cap: usize,
    senders: Vec<mpsc::Sender<Job<(OpStats, HostWorkStats)>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next: u64,
    // lint: ordered-ok (keyed insert/remove by handle only; never iterated)
    pending: HashMap<u64, PendingBatch<(OpStats, HostWorkStats)>>,
    /// Real work accumulated across joined batches (join-order
    /// insensitive: all fields merge by wrapping addition).
    work: HostWorkStats,
}

impl HostParallelExecutor {
    /// Spawns `workers` threads driving `devices` engines with the default
    /// per-event real-row cap.
    ///
    /// # Panics
    ///
    /// Panics if `devices` or `workers` is zero, or if `backend` is
    /// [`ExecBackend::Sim`] (build that through
    /// [`super::build_executor`]).
    #[must_use]
    pub fn new(cfg: EngineConfig, devices: usize, workers: usize, backend: ExecBackend) -> Self {
        Self::with_rows_cap(cfg, devices, workers, backend, DEFAULT_ROWS_CAP)
    }

    /// [`HostParallelExecutor::new`] with an explicit cap on real rows
    /// (NTT) / width factor (Conv) executed per kernel event shard —
    /// benches raise it for honest kernel timing.
    #[must_use]
    pub fn with_rows_cap(
        cfg: EngineConfig,
        devices: usize,
        workers: usize,
        backend: ExecBackend,
        rows_cap: usize,
    ) -> Self {
        assert!(devices > 0, "need at least one device");
        assert!(workers > 0, "need at least one worker");
        assert!(
            backend != ExecBackend::Sim,
            "host executor needs a host backend"
        );
        assert!(rows_cap > 0, "need a positive real-row cap");
        let workers = workers.min(devices);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<Job<(OpStats, HostWorkStats)>>();
            let my_devices: Vec<usize> = (0..devices).filter(|d| d % workers == w).collect();
            let worker_cfg = cfg.clone();
            let handle = std::thread::Builder::new()
                .name(worker_thread_name(&my_devices))
                .spawn(move || {
                    // Engines and prime caches live inside the thread; the
                    // scratch arenas the kernels stage through are
                    // thread-local by design.
                    // lint: ordered-ok (keyed get_mut by device id only; never iterated)
                    let mut engines: HashMap<usize, Engine> = my_devices
                        .iter()
                        .map(|&d| (d, Engine::new(worker_cfg.clone())))
                        .collect();
                    let mut real = RealWork::new(backend, rows_cap);
                    while let Ok(job) = rx.recv() {
                        let mut out = Vec::with_capacity(job.shards.len());
                        for (d, width) in job.shards {
                            let engine = engines.get_mut(&d).expect("shard for owned device");
                            let stats = engine.run_schedule(&job.tag, &job.events, width);
                            let mut work = HostWorkStats::default();
                            for (ei, ev) in job.events.iter().enumerate() {
                                real.run_event(d, ei, ev, width, &mut work);
                            }
                            out.push((d, (stats, work)));
                        }
                        let _ = job.reply.send(out);
                    }
                })
                .expect("spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            cfg,
            devices,
            backend,
            rows_cap,
            senders,
            handles,
            next: 0,
            pending: HashMap::new(),
            work: HostWorkStats::default(),
        }
    }

    /// Worker thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// The per-event real-row cap.
    #[must_use]
    pub fn rows_cap(&self) -> usize {
        self.rows_cap
    }

    fn settle(&mut self, batch: PendingBatch<(OpStats, HostWorkStats)>) -> BatchResult {
        let collected = batch.into_device_order();
        let mut stats = Vec::with_capacity(collected.len());
        for (d, (s, w)) in collected {
            self.work.absorb(w);
            stats.push((d, s));
        }
        merge_shards(stats, self.devices)
    }
}

impl Executor for HostParallelExecutor {
    fn submit(&mut self, batch: ExecBatch) -> ExecHandle {
        let widths = shard_widths(batch.width, self.devices);
        let workers = self.senders.len();
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut replies = 0usize;
        for (w, tx) in self.senders.iter().enumerate() {
            let shards: Vec<(usize, usize)> = widths
                .iter()
                .enumerate()
                .filter(|&(d, &width)| d % workers == w && width > 0)
                .map(|(d, &width)| (d, width))
                .collect();
            if shards.is_empty() {
                continue;
            }
            tx.send(Job {
                tag: Arc::clone(&batch.tag),
                events: Arc::clone(&batch.events),
                shards,
                reply: reply_tx.clone(),
            })
            .expect("worker thread alive");
            replies += 1;
        }
        let id = self.next;
        self.next += 1;
        self.pending.insert(
            id,
            PendingBatch {
                rx: reply_rx,
                awaited: replies,
                collected: Vec::new(),
            },
        );
        ExecHandle(id)
    }

    fn join(&mut self, handle: ExecHandle) -> BatchResult {
        let mut batch = self
            .pending
            .remove(&handle.0)
            .expect("join of an unknown or already-joined handle");
        batch.wait();
        self.settle(batch)
    }

    fn try_join(&mut self, handle: ExecHandle) -> Option<BatchResult> {
        let batch = self
            .pending
            .get_mut(&handle.0)
            .expect("try_join of an unknown or already-joined handle");
        if !batch.poll() {
            return None;
        }
        let batch = self.pending.remove(&handle.0).expect("present");
        Some(self.settle(batch))
    }

    fn caps(&self) -> ExecCaps {
        ExecCaps {
            devices: self.devices,
            workers: self.senders.len(),
            vram_bytes_per_device: self.cfg.device.vram_bytes(),
            power_watts: self.cfg.device.power_watts * self.devices as f64,
            device_name: self.cfg.device.name.clone(),
            backend: self.backend.label(),
        }
    }

    fn host_work(&self) -> Option<HostWorkStats> {
        Some(self.work)
    }
}

impl Drop for HostParallelExecutor {
    fn drop(&mut self) {
        self.senders.clear(); // closes the channels; workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::SimExecutor;
    use super::*;
    use crate::engine::Variant;
    use crate::schedule::hmult_schedule;
    use tensorfhe_ckks::CkksParams;

    fn batch(params: &CkksParams, width: usize) -> ExecBatch {
        ExecBatch {
            tag: "HMULT".into(),
            events: hmult_schedule(params, params.max_level()).into(),
            width,
        }
    }

    fn bits(r: &BatchResult) -> Vec<u64> {
        let mut v = vec![
            r.stats.time_us.to_bits(),
            r.stats.occupancy.to_bits(),
            r.stats.energy_j.to_bits(),
            r.stats.launches as u64,
        ];
        v.extend(r.per_device_us.iter().map(|t| t.to_bits()));
        for (k, t) in &r.stats.by_kernel {
            v.extend(k.bytes().map(u64::from));
            v.push(t.to_bits());
        }
        v
    }

    fn drain(exec: &mut dyn Executor, params: &CkksParams, widths: &[usize]) -> Vec<Vec<u64>> {
        let handles: Vec<ExecHandle> = widths
            .iter()
            .map(|&w| exec.submit(batch(params, w)))
            .collect();
        handles.into_iter().map(|h| bits(&exec.join(h))).collect()
    }

    #[test]
    fn host_backends_report_bit_identical_to_sim() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let widths = [1usize, 7, 16, 5];
        for devices in [1usize, 3] {
            let mut sim = SimExecutor::new(cfg.clone(), devices);
            let want = drain(&mut sim, &params, &widths);
            for backend in [ExecBackend::HostParallel, ExecBackend::HostScalar] {
                for workers in [1usize, devices] {
                    let mut host =
                        HostParallelExecutor::new(cfg.clone(), devices, workers, backend);
                    let got = drain(&mut host, &params, &widths);
                    assert_eq!(
                        got, want,
                        "{backend:?} workers={workers} devices={devices} diverged from sim"
                    );
                    assert!(
                        host.host_work().expect("host backend").did_work(),
                        "host backend must execute real arithmetic"
                    );
                }
            }
        }
    }

    #[test]
    fn checksums_agree_across_kernels_and_worker_counts() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let widths = [4usize, 9, 2];
        let mut reference = None;
        for backend in [ExecBackend::HostParallel, ExecBackend::HostScalar] {
            for workers in [1usize, 2, 4] {
                let mut host = HostParallelExecutor::new(cfg.clone(), 4, workers, backend);
                let _ = drain(&mut host, &params, &widths);
                let work = host.host_work().expect("host backend");
                assert!(work.ntt_rows > 0 && work.conv_cols > 0, "did real work");
                match &reference {
                    None => reference = Some(work),
                    Some(want) => assert_eq!(
                        &work, want,
                        "{backend:?} workers={workers}: host work diverged"
                    ),
                }
            }
        }
    }

    #[test]
    fn caps_name_the_backend() {
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let host = HostParallelExecutor::new(cfg.clone(), 2, 2, ExecBackend::HostParallel);
        assert_eq!(host.caps().backend, "host-parallel");
        assert_eq!(host.caps().devices, 2);
        assert_eq!(host.workers(), 2);
        assert_eq!(host.rows_cap(), DEFAULT_ROWS_CAP);
        let scalar = HostParallelExecutor::new(cfg, 1, 1, ExecBackend::HostScalar);
        assert_eq!(scalar.caps().backend, "host-scalar");
    }

    #[test]
    #[should_panic(expected = "host backend")]
    fn sim_backend_rejected() {
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let _ = HostParallelExecutor::new(cfg, 1, 1, ExecBackend::Sim);
    }
}
