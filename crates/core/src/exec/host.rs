//! The host-parallel backend: the first executor that *computes* instead
//! of simulating — now at full width, with work stealing.
//!
//! [`HostParallelExecutor`] keeps the [`super::ThreadedPool`]-style
//! job/reply machinery for the *simulated* side — one worker thread per
//! (group of) device(s), batches sharded by [`shard_widths`], results
//! merged in device order — but the *real* arithmetic no longer rides
//! inside those per-device jobs. At `submit` every GEMM-shaped kernel
//! event shard is split into row-range **chunks** and pushed onto the
//! owning worker's deque; workers execute chunks between (and after)
//! their simulated jobs, and any idle worker **steals** chunks from busy
//! ones:
//!
//! * `NTT`/`INTT` events run the batched four-step pipeline
//!   (`tensorfhe_ntt::BatchedGemmNtt`) over the chunk's row range —
//!   through the cache-blocked Montgomery fast kernels
//!   ([`ExecBackend::HostParallel`], SIMD register tiles) or the Barrett
//!   scalar reference ([`ExecBackend::HostScalar`], the baseline
//!   `fig14_host_gemm` measures against). Chunks are whole rows.
//! * `Conv` events run the wide basis-conversion GEMM (`BasisConvGemm`);
//!   chunks are column ranges of the `(L_dst × L_src) × (L_src × W)`
//!   product, generated and folded independently per column.
//! * Element-wise events are counted but not executed — the issue scope
//!   is the two GEMM families, which dominate the arithmetic.
//!
//! # Chunk / steal lifecycle
//!
//! `submit` plans chunks as a pure function of `(events, shard widths,
//! rows_cap)` — no engine or worker state — sized so each holds roughly
//! `CHUNK_ELEMS` (16 Ki) elements. A chunk for device `d` lands at the back of
//! the deque of worker `d % workers` (the worker that owns the device's
//! engine). Owners pop their own deque from the **back** (LIFO: the
//! freshest chunk is the cache-warmest); thieves scan the other deques
//! and pop from the **front** (FIFO: the oldest chunk is the largest
//! remaining tranche of a stranger's work, and the ends never contend) —
//! the chase-lev discipline, here with a plain mutex per deque.
//!
//! Stealing crosses devices freely, but **engines never migrate**: the
//! simulated `Engine` is stateful (its launch history *is* the
//! deterministic report stream) and must see every batch of its device
//! in submission order on one thread. Chunks carry no engine state at
//! all — inputs are regenerated from the seed, outputs are folded into
//! an order-insensitive checksum — so executing one on a foreign worker
//! is indistinguishable from executing it at home. That asymmetry is the
//! whole design: determinism lives with the device-owned engines,
//! parallelism lives with the ownerless chunks. It also means workers in
//! excess of devices (legal since this rewrite) are pure thieves:
//! they own no engine, receive no simulated jobs, and still earn real
//! speedup on the arithmetic.
//!
//! Inputs are generated deterministically per `(device, event, row)` —
//! and per column for `Conv` — from splitmix64, and checksums are folded
//! with each residue's *global* position in its event block, so
//! [`HostWorkStats`] is a pure function of the submitted batch sequence:
//! independent of worker count, chunk boundaries, steal pattern, join
//! order, and kernel flavour (fast and scalar kernels are bit-identical,
//! a property the cross-backend suite pins). By default every row runs
//! (`rows_cap = 0`, uncapped); a positive cap bounds real rows per event
//! shard for hosts where paper widths are intractable
//! (`TENSORFHE_ROWS_CAP`, CI's bounded corners).
//!
//! The *simulated* reports are produced by exactly the same per-device
//! [`Engine`] launch sequences as [`super::SimExecutor`], so every report
//! and stat above the seam stays bit-identical at every workers × depth ×
//! admission point — host arithmetic buys wall-clock measurements, never
//! result drift.

use super::{
    merge_shards, shard_widths, worker_thread_name, BatchResult, ExecBackend, ExecBatch, ExecCaps,
    ExecHandle, Executor, Job, PendingBatch,
};
use crate::engine::{Engine, EngineConfig, OpStats};
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use tensorfhe_ckks::KernelEvent;
use tensorfhe_math::prime::generate_ntt_primes;
use tensorfhe_ntt::{NttAlgorithm, NttBatchOps, PlanCache};

/// Default cap on real rows (NTT) / block columns-per-degree (Conv)
/// executed per kernel event shard: `0` = uncapped, every row runs.
/// CI's bounded corners and debug-mode hosts set a small positive cap
/// (`TENSORFHE_ROWS_CAP`).
pub const DEFAULT_ROWS_CAP: usize = 0;

/// Rough element budget per work-stealing chunk: full NTT rows (so a
/// chunk is a `⌈CHUNK_ELEMS/n⌉ × n` block) or Conv columns (weighted by
/// `l_src + l_dst`, the elements a column touches). Big enough that the
/// deque traffic is noise, small enough that a paper-width event splits
/// across every worker.
const CHUNK_ELEMS: usize = 1 << 14;

/// Applies the per-event-shard real-row cap (`0` = uncapped).
fn capped(units: usize, cap: usize) -> usize {
    let units = units.max(1);
    if cap == 0 {
        units
    } else {
        units.min(cap)
    }
}

/// Counters for the real arithmetic a host backend executed, plus a
/// fold of every output residue produced.
///
/// All fields merge by wrapping addition, so totals are independent of
/// shard merge order and join order; the checksum salts each residue with
/// its global position in its event block, so it is bit-identical across
/// worker counts, chunk boundaries, steal patterns, and the fast/scalar
/// kernel flavours.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostWorkStats {
    /// Polynomial rows transformed through the batched NTT pipeline.
    pub ntt_rows: u64,
    /// Coefficient columns converted through the basis-conversion GEMM.
    pub conv_cols: u64,
    /// Elements of element-wise kernel events (counted, not executed).
    pub elems: u64,
    /// Order-insensitive fold of every output residue produced.
    pub checksum: u64,
}

impl HostWorkStats {
    /// Merges another counter set in (wrapping, commutative).
    pub fn absorb(&mut self, other: HostWorkStats) {
        self.ntt_rows = self.ntt_rows.wrapping_add(other.ntt_rows);
        self.conv_cols = self.conv_cols.wrapping_add(other.conv_cols);
        self.elems = self.elems.wrapping_add(other.elems);
        self.checksum = self.checksum.wrapping_add(other.checksum);
    }

    /// Whether any real arithmetic was executed.
    #[must_use]
    pub fn did_work(&self) -> bool {
        self.ntt_rows > 0 || self.conv_cols > 0
    }
}

/// Work-stealing scheduler counters (monotonic over the executor's life).
///
/// `steals`/`stolen_rows` depend on thread timing and are **not** part of
/// any determinism contract; `planned_rows`/`executed_rows` are — work
/// conservation demands they agree once every submitted batch is joined.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Chunks executed by a worker other than their device's owner.
    pub steals: u64,
    /// Work units (NTT rows / Conv columns) inside those stolen chunks.
    pub stolen_rows: u64,
    /// Work units planned across all submitted batches.
    pub planned_rows: u64,
    /// Work units actually executed by the workers.
    pub executed_rows: u64,
}

/// splitmix64 step — the deterministic input stream for real kernel work.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed for `(device, event index, row)` — worker-count independent by
/// construction (devices are fixed to their data, not to their workers).
fn row_seed(device: usize, event: usize, row: usize) -> u64 {
    (device as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((event as u64) << 24)
        .wrapping_add(row as u64)
}

fn fill_row(out: &mut [u64], q: u64, seed: u64) {
    let mut state = seed;
    for x in out.iter_mut() {
        *x = splitmix(&mut state) % q;
    }
}

/// Random-access cell of a row stream: the value at `col` of the row
/// seeded by `seed`, computable without streaming through earlier
/// columns — what lets a Conv column chunk generate its inputs
/// independently of where its range starts.
fn row_cell(seed: u64, col: usize, q: u64) -> u64 {
    let mut state = seed.wrapping_add((col as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
    splitmix(&mut state) % q
}

/// Order-insensitive residue fold: each value is salted with its global
/// position `base + i` in its event block (so swapped values do not
/// cancel), making the fold independent of how the block was chunked.
fn fold_checksum_at(acc: &mut u64, base: u64, values: &[u64]) {
    for (i, &v) in values.iter().enumerate() {
        let mut state = v.wrapping_add(base.wrapping_add(i as u64) << 32);
        *acc = acc.wrapping_add(splitmix(&mut state));
    }
}

/// One stealable unit of real arithmetic: a row (NTT) or column (Conv)
/// range of one kernel event's device shard. Pure data — regenerates its
/// inputs from the seed, so it can execute on any worker.
#[derive(Debug)]
struct Chunk {
    work: Arc<BatchWork>,
    events: Arc<[KernelEvent]>,
    event_idx: usize,
    device: usize,
    /// Row range (NTT) or column range (Conv) this chunk covers.
    units: Range<usize>,
    /// Total units of the whole event shard (checksum position base).
    total_units: usize,
}

/// Per-batch real-work rendezvous: outstanding chunk count plus the
/// order-insensitively folded stats; `join` waits on it alongside the
/// simulated replies.
#[derive(Debug)]
struct BatchWork {
    remaining: Mutex<usize>,
    done: Condvar,
    stats: Mutex<HostWorkStats>,
}

impl BatchWork {
    fn new(chunks: usize, upfront: HostWorkStats) -> Self {
        Self {
            remaining: Mutex::new(chunks),
            done: Condvar::new(),
            stats: Mutex::new(upfront),
        }
    }

    /// Folds one executed chunk in and releases waiters on the last one.
    fn complete_one(&self, local: HostWorkStats) {
        self.stats.lock().expect("stats lock").absorb(local);
        let mut left = self.remaining.lock().expect("remaining lock");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn finished(&self) -> bool {
        *self.remaining.lock().expect("remaining lock") == 0
    }

    fn wait_done(&self) {
        let mut left = self.remaining.lock().expect("remaining lock");
        while *left > 0 {
            left = self.done.wait(left).expect("remaining lock");
        }
    }

    fn stats(&self) -> HostWorkStats {
        *self.stats.lock().expect("stats lock")
    }
}

/// State shared between the executor handle and every worker: the
/// per-worker chunk deques, the sleep/wake signal, and the steal
/// counters.
#[derive(Debug)]
struct StealShared {
    /// One deque per worker; owner pops back, thieves pop front.
    queues: Vec<Mutex<VecDeque<Chunk>>>,
    /// Generation counter under the wait mutex: `submit` bumps it after
    /// publishing work, idle workers sleep only while it is unchanged —
    /// the classic lost-wakeup guard.
    gen: Mutex<u64>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    steals: AtomicU64,
    stolen_rows: AtomicU64,
    planned_rows: AtomicU64,
    executed_rows: AtomicU64,
}

impl StealShared {
    fn new(workers: usize) -> Self {
        Self {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gen: Mutex::new(0),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            stolen_rows: AtomicU64::new(0),
            planned_rows: AtomicU64::new(0),
            executed_rows: AtomicU64::new(0),
        }
    }

    /// Publishes new work (or shutdown): bump the generation and wake
    /// every sleeper.
    fn bump(&self) {
        let mut g = self.gen.lock().expect("gen lock");
        *g = g.wrapping_add(1);
        self.work_ready.notify_all();
    }

    /// Next chunk for worker `me`: own deque from the back, else steal
    /// the front of someone else's. `true` = stolen.
    fn next_chunk(&self, me: usize) -> Option<(Chunk, bool)> {
        if let Some(c) = self.queues[me].lock().expect("queue lock").pop_back() {
            return Some((c, false));
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(c) = self.queues[victim].lock().expect("queue lock").pop_front() {
                return Some((c, true));
            }
        }
        None
    }
}

/// Per-worker real-arithmetic state: the kernel flavour and caches of the
/// deterministic primes backing the work (the plans themselves are shared
/// through [`PlanCache::global`], and every thread's cache regenerates
/// identical primes).
struct RealWork {
    backend: ExecBackend,
    // lint: ordered-ok (keyed entry by degree only; never iterated)
    ntt_primes: HashMap<usize, u64>,
    // lint: ordered-ok (keyed entry by shape only; never iterated)
    conv_primes: HashMap<(usize, usize), Vec<u64>>,
}

impl RealWork {
    fn new(backend: ExecBackend) -> Self {
        Self {
            backend,
            ntt_primes: HashMap::new(),
            conv_primes: HashMap::new(),
        }
    }

    fn ntt_prime(&mut self, n: usize) -> u64 {
        *self
            .ntt_primes
            .entry(n)
            .or_insert_with(|| generate_ntt_primes(1, 28, n as u64)[0])
    }

    /// Executes one chunk's real arithmetic and returns its fold.
    fn run_chunk(&mut self, chunk: &Chunk) -> HostWorkStats {
        let fast = self.backend == ExecBackend::HostParallel;
        let mut work = HostWorkStats::default();
        match chunk.events[chunk.event_idx] {
            KernelEvent::Ntt { n, inverse, .. } => {
                let q = self.ntt_prime(n);
                let plan = PlanCache::global().get(n, q, NttAlgorithm::FourStep);
                let rows = chunk.units.len();
                let mut block = vec![0u64; rows * n];
                for (r, row) in block.chunks_mut(n).enumerate() {
                    fill_row(
                        row,
                        q,
                        row_seed(chunk.device, chunk.event_idx, chunk.units.start + r),
                    );
                }
                {
                    let mut views: Vec<&mut [u64]> = block.chunks_mut(n).collect();
                    match (fast, inverse) {
                        (true, false) => plan.forward_batch_fast(&mut views),
                        (true, true) => plan.inverse_batch_fast(&mut views),
                        (false, false) => plan.forward_batch(&mut views),
                        (false, true) => plan.inverse_batch(&mut views),
                    }
                }
                for (r, row) in block.chunks(n).enumerate() {
                    let base = ((chunk.units.start + r) * n) as u64;
                    fold_checksum_at(&mut work.checksum, base, row);
                }
                work.ntt_rows = work.ntt_rows.wrapping_add(rows as u64);
            }
            KernelEvent::Conv { l_src, l_dst, .. } => {
                let pool = self
                    .conv_primes
                    .entry((l_src, l_dst))
                    .or_insert_with(|| generate_ntt_primes(l_src + l_dst, 28, 1 << 10))
                    .clone();
                let (src, rest) = pool.split_at(l_src);
                let dst = &rest[..l_dst];
                let plan = PlanCache::global().get_bconv(src, dst);
                let cols = chunk.units.len();
                let mut src_flat = vec![0u64; l_src * cols];
                for (i, (row, &q)) in src_flat.chunks_mut(cols).zip(src).enumerate() {
                    let seed = row_seed(chunk.device, chunk.event_idx, i);
                    for (c, x) in row.iter_mut().enumerate() {
                        *x = row_cell(seed, chunk.units.start + c, q);
                    }
                }
                let mut out_flat = vec![0u64; l_dst * cols];
                {
                    let src_rows: Vec<&[u64]> = src_flat.chunks(cols).collect();
                    let mut out_rows: Vec<&mut [u64]> = out_flat.chunks_mut(cols).collect();
                    if fast {
                        plan.convert_block_into_mont(&src_rows, &mut out_rows);
                    } else {
                        plan.convert_block_into(&src_rows, &mut out_rows);
                    }
                }
                for (i, orow) in out_flat.chunks(cols).enumerate() {
                    let base = (i * chunk.total_units + chunk.units.start) as u64;
                    fold_checksum_at(&mut work.checksum, base, orow);
                }
                work.conv_cols = work.conv_cols.wrapping_add(cols as u64);
            }
            // Element-wise events are counted at submit, never chunked.
            _ => unreachable!("only GEMM-shaped events are chunked"),
        }
        work
    }
}

/// Data-parallel CPU backend: per-device worker threads that execute the
/// batched-NTT and basis-conversion GEMMs with real host arithmetic at
/// full width, stealing row-chunks from each other when idle (see the
/// module docs), while reproducing [`super::SimExecutor`]'s simulated
/// reports bit-for-bit.
#[derive(Debug)]
pub struct HostParallelExecutor {
    cfg: EngineConfig,
    devices: usize,
    backend: ExecBackend,
    rows_cap: usize,
    senders: Vec<mpsc::Sender<Job<OpStats>>>,
    shared: Arc<StealShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next: u64,
    // lint: ordered-ok (keyed insert/remove by handle only; never iterated)
    pending: HashMap<u64, HostPending>,
    /// Real work accumulated across joined batches (join-order
    /// insensitive: all fields merge by wrapping addition).
    work: HostWorkStats,
}

/// An in-flight host batch: the simulated replies plus the real-work
/// rendezvous.
#[derive(Debug)]
struct HostPending {
    sim: PendingBatch<OpStats>,
    real: Arc<BatchWork>,
}

impl HostParallelExecutor {
    /// Spawns `workers` threads driving `devices` engines with the default
    /// (uncapped) real-row policy.
    ///
    /// Unlike the simulated backends, `workers` is **not** clamped to
    /// `devices`: surplus workers own no engine and receive no simulated
    /// jobs, but steal real-arithmetic chunks and earn real speedup.
    ///
    /// # Panics
    ///
    /// Panics if `devices` or `workers` is zero, or if `backend` is
    /// [`ExecBackend::Sim`] (build that through
    /// [`super::build_executor`]).
    #[must_use]
    pub fn new(cfg: EngineConfig, devices: usize, workers: usize, backend: ExecBackend) -> Self {
        Self::with_rows_cap(cfg, devices, workers, backend, DEFAULT_ROWS_CAP)
    }

    /// [`HostParallelExecutor::new`] with an explicit cap on real rows
    /// (NTT) / width factor (Conv) executed per kernel event shard; `0`
    /// means uncapped (the default). CI's bounded corners and debug-mode
    /// test hosts set a small cap to keep paper widths tractable.
    #[must_use]
    pub fn with_rows_cap(
        cfg: EngineConfig,
        devices: usize,
        workers: usize,
        backend: ExecBackend,
        rows_cap: usize,
    ) -> Self {
        assert!(devices > 0, "need at least one device");
        assert!(workers > 0, "need at least one worker");
        assert!(
            backend != ExecBackend::Sim,
            "host executor needs a host backend"
        );
        let shared = Arc::new(StealShared::new(workers));
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<Job<OpStats>>();
            let my_devices: Vec<usize> = (0..devices).filter(|d| d % workers == w).collect();
            let name = if my_devices.is_empty() {
                // Pure thief: owns no device, only steals chunks.
                format!("tfhe-worker-s{w}")
            } else {
                worker_thread_name(&my_devices)
            };
            let worker_cfg = cfg.clone();
            let shared_w = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    // Engines and prime caches live inside the thread; the
                    // scratch arenas the kernels stage through are
                    // thread-local by design.
                    // lint: ordered-ok (keyed get_mut by device id only; never iterated)
                    let mut engines: HashMap<usize, Engine> = my_devices
                        .iter()
                        .map(|&d| (d, Engine::new(worker_cfg.clone())))
                        .collect();
                    let mut real = RealWork::new(backend);
                    loop {
                        // Snapshot the wake generation *before* looking for
                        // work: anything published after this point re-bumps
                        // it, so the sleep below cannot miss it.
                        let g0 = *shared_w.gen.lock().expect("gen lock");
                        let mut busy = false;
                        // Simulated jobs first — they are cheap and strictly
                        // ordered per device; chunks are the heavy tail.
                        while let Ok(job) = rx.try_recv() {
                            busy = true;
                            let mut out = Vec::with_capacity(job.shards.len());
                            for (d, width) in job.shards {
                                let engine = engines.get_mut(&d).expect("shard for owned device");
                                out.push((d, engine.run_schedule(&job.tag, &job.events, width)));
                            }
                            let _ = job.reply.send(out);
                        }
                        while let Some((chunk, stolen)) = shared_w.next_chunk(w) {
                            busy = true;
                            if stolen {
                                shared_w.steals.fetch_add(1, Ordering::Relaxed);
                                shared_w
                                    .stolen_rows
                                    .fetch_add(chunk.units.len() as u64, Ordering::Relaxed);
                            }
                            let local = real.run_chunk(&chunk);
                            shared_w
                                .executed_rows
                                .fetch_add(chunk.units.len() as u64, Ordering::Relaxed);
                            chunk.work.complete_one(local);
                        }
                        if busy {
                            continue;
                        }
                        if shared_w.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let guard = shared_w.gen.lock().expect("gen lock");
                        if *guard == g0 {
                            drop(shared_w.work_ready.wait(guard).expect("gen lock"));
                        }
                    }
                })
                .expect("spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            cfg,
            devices,
            backend,
            rows_cap,
            senders,
            shared,
            handles,
            next: 0,
            pending: HashMap::new(),
            work: HostWorkStats::default(),
        }
    }

    /// Worker thread count (not clamped to the device count).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// The per-event real-row cap (`0` = uncapped).
    #[must_use]
    pub fn rows_cap(&self) -> usize {
        self.rows_cap
    }

    /// Work-stealing scheduler counters (see [`StealStats`]).
    #[must_use]
    pub fn steals(&self) -> StealStats {
        StealStats {
            steals: self.shared.steals.load(Ordering::Relaxed),
            stolen_rows: self.shared.stolen_rows.load(Ordering::Relaxed),
            planned_rows: self.shared.planned_rows.load(Ordering::Relaxed),
            executed_rows: self.shared.executed_rows.load(Ordering::Relaxed),
        }
    }

    fn settle(&mut self, pending: HostPending) -> BatchResult {
        self.work.absorb(pending.real.stats());
        let collected = pending.sim.into_device_order();
        merge_shards(collected, self.devices)
    }
}

impl Executor for HostParallelExecutor {
    fn submit(&mut self, batch: ExecBatch) -> ExecHandle {
        let widths = shard_widths(batch.width, self.devices);
        let workers = self.senders.len();
        // Simulated jobs: unchanged ThreadedPool discipline — each worker
        // runs its owned devices' shards in submission order.
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut replies = 0usize;
        for (w, tx) in self.senders.iter().enumerate() {
            let shards: Vec<(usize, usize)> = widths
                .iter()
                .enumerate()
                .filter(|&(d, &width)| d % workers == w && width > 0)
                .map(|(d, &width)| (d, width))
                .collect();
            if shards.is_empty() {
                continue;
            }
            tx.send(Job {
                tag: Arc::clone(&batch.tag),
                events: Arc::clone(&batch.events),
                shards,
                reply: reply_tx.clone(),
            })
            .expect("worker thread alive");
            replies += 1;
        }
        // Real-arithmetic chunks: planned purely from (events, widths,
        // rows_cap), so the plan — and through the position-salted
        // checksum, the folded result — is independent of who executes
        // what.
        let mut upfront = HostWorkStats::default();
        let mut planned: Vec<(usize, usize, Range<usize>, usize)> = Vec::new();
        for (d, &width) in widths.iter().enumerate() {
            if width == 0 {
                continue;
            }
            for (ei, ev) in batch.events.iter().enumerate() {
                match *ev {
                    KernelEvent::Ntt { n, limbs, .. } => {
                        if n < 4 || !n.is_power_of_two() {
                            continue;
                        }
                        let rows = capped(width * limbs, self.rows_cap);
                        let step = (CHUNK_ELEMS / n).max(1);
                        let mut r0 = 0;
                        while r0 < rows {
                            let r1 = (r0 + step).min(rows);
                            planned.push((d, ei, r0..r1, rows));
                            r0 = r1;
                        }
                    }
                    KernelEvent::Conv { n, l_src, l_dst } => {
                        if l_src == 0 || l_dst == 0 {
                            continue;
                        }
                        let cols = capped(width, self.rows_cap) * n.max(1);
                        let step = (CHUNK_ELEMS / (l_src + l_dst)).max(1);
                        let mut c0 = 0;
                        while c0 < cols {
                            let c1 = (c0 + step).min(cols);
                            planned.push((d, ei, c0..c1, cols));
                            c0 = c1;
                        }
                    }
                    KernelEvent::HadaMult { n, limbs }
                    | KernelEvent::EleAdd { n, limbs }
                    | KernelEvent::EleSub { n, limbs }
                    | KernelEvent::FrobeniusMap { n, limbs }
                    | KernelEvent::Conjugate { n, limbs } => {
                        upfront.elems = upfront.elems.wrapping_add((n * limbs * width) as u64);
                    }
                }
            }
        }
        let real = Arc::new(BatchWork::new(planned.len(), upfront));
        let mut units = 0u64;
        for (d, ei, range, total) in planned {
            units += range.len() as u64;
            self.shared.queues[d % workers]
                .lock()
                .expect("queue lock")
                .push_back(Chunk {
                    work: Arc::clone(&real),
                    events: Arc::clone(&batch.events),
                    event_idx: ei,
                    device: d,
                    units: range,
                    total_units: total,
                });
        }
        self.shared.planned_rows.fetch_add(units, Ordering::Relaxed);
        self.shared.bump();
        let id = self.next;
        self.next += 1;
        self.pending.insert(
            id,
            HostPending {
                sim: PendingBatch {
                    rx: reply_rx,
                    awaited: replies,
                    collected: Vec::new(),
                },
                real,
            },
        );
        ExecHandle(id)
    }

    fn join(&mut self, handle: ExecHandle) -> BatchResult {
        let mut pending = self
            .pending
            .remove(&handle.0)
            .expect("join of an unknown or already-joined handle");
        pending.sim.wait();
        pending.real.wait_done();
        self.settle(pending)
    }

    fn try_join(&mut self, handle: ExecHandle) -> Option<BatchResult> {
        let pending = self
            .pending
            .get_mut(&handle.0)
            .expect("try_join of an unknown or already-joined handle");
        if !pending.sim.poll() || !pending.real.finished() {
            return None;
        }
        let pending = self.pending.remove(&handle.0).expect("present");
        Some(self.settle(pending))
    }

    fn caps(&self) -> ExecCaps {
        ExecCaps {
            devices: self.devices,
            workers: self.senders.len(),
            vram_bytes_per_device: self.cfg.device.vram_bytes(),
            power_watts: self.cfg.device.power_watts * self.devices as f64,
            device_name: self.cfg.device.name.clone(),
            backend: self.backend.label(),
        }
    }

    fn host_work(&self) -> Option<HostWorkStats> {
        Some(self.work)
    }

    fn steal_stats(&self) -> Option<StealStats> {
        Some(self.steals())
    }
}

impl Drop for HostParallelExecutor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.bump(); // wake sleepers so they observe shutdown
        self.senders.clear(); // closes the channels; workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::SimExecutor;
    use super::*;
    use crate::engine::Variant;
    use crate::schedule::hmult_schedule;
    use tensorfhe_ckks::CkksParams;

    fn batch(params: &CkksParams, width: usize) -> ExecBatch {
        ExecBatch {
            tag: "HMULT".into(),
            events: hmult_schedule(params, params.max_level()).into(),
            width,
        }
    }

    fn bits(r: &BatchResult) -> Vec<u64> {
        let mut v = vec![
            r.stats.time_us.to_bits(),
            r.stats.occupancy.to_bits(),
            r.stats.energy_j.to_bits(),
            r.stats.launches as u64,
        ];
        v.extend(r.per_device_us.iter().map(|t| t.to_bits()));
        for (k, t) in &r.stats.by_kernel {
            v.extend(k.bytes().map(u64::from));
            v.push(t.to_bits());
        }
        v
    }

    fn drain(exec: &mut dyn Executor, params: &CkksParams, widths: &[usize]) -> Vec<Vec<u64>> {
        let handles: Vec<ExecHandle> = widths
            .iter()
            .map(|&w| exec.submit(batch(params, w)))
            .collect();
        handles.into_iter().map(|h| bits(&exec.join(h))).collect()
    }

    /// Small-cap host executor: the unit tests pin seam semantics, which
    /// are rows_cap-independent; the uncapped path is exercised by the
    /// dedicated full-width tests (debug-mode CI stays fast).
    fn host(
        cfg: &EngineConfig,
        devices: usize,
        workers: usize,
        b: ExecBackend,
    ) -> HostParallelExecutor {
        HostParallelExecutor::with_rows_cap(cfg.clone(), devices, workers, b, 4)
    }

    #[test]
    fn host_backends_report_bit_identical_to_sim() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let widths = [1usize, 7, 16, 5];
        for devices in [1usize, 3] {
            let mut sim = SimExecutor::new(cfg.clone(), devices);
            let want = drain(&mut sim, &params, &widths);
            for backend in [ExecBackend::HostParallel, ExecBackend::HostScalar] {
                for workers in [1usize, devices] {
                    let mut host = host(&cfg, devices, workers, backend);
                    let got = drain(&mut host, &params, &widths);
                    assert_eq!(
                        got, want,
                        "{backend:?} workers={workers} devices={devices} diverged from sim"
                    );
                    assert!(
                        host.host_work().expect("host backend").did_work(),
                        "host backend must execute real arithmetic"
                    );
                }
            }
        }
    }

    #[test]
    fn checksums_agree_across_kernels_and_worker_counts() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let widths = [4usize, 9, 2];
        let mut reference = None;
        // Workers beyond the device count (6 > 4) join as pure thieves
        // and must not perturb the fold either.
        for backend in [ExecBackend::HostParallel, ExecBackend::HostScalar] {
            for workers in [1usize, 2, 4, 6] {
                let mut host = host(&cfg, 4, workers, backend);
                let _ = drain(&mut host, &params, &widths);
                let work = host.host_work().expect("host backend");
                assert!(work.ntt_rows > 0 && work.conv_cols > 0, "did real work");
                match &reference {
                    None => reference = Some(work),
                    Some(want) => assert_eq!(
                        &work, want,
                        "{backend:?} workers={workers}: host work diverged"
                    ),
                }
            }
        }
    }

    #[test]
    fn full_width_checksum_is_chunk_and_worker_invariant() {
        // Uncapped execution splits events into many chunks; the fold
        // must not care how they land across 1..=3 workers.
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let mut reference = None;
        for workers in [1usize, 2, 3] {
            let mut host =
                HostParallelExecutor::new(cfg.clone(), 2, workers, ExecBackend::HostParallel);
            let _ = drain(&mut host, &params, &[5usize, 3]);
            let work = host.host_work().expect("host backend");
            let steals = host.steals();
            assert_eq!(
                steals.planned_rows, steals.executed_rows,
                "workers={workers}: work conservation"
            );
            match &reference {
                None => reference = Some(work),
                Some(want) => {
                    assert_eq!(&work, want, "workers={workers}: full-width fold diverged");
                }
            }
        }
    }

    #[test]
    fn work_is_conserved_and_stealable_at_any_worker_count() {
        let params = CkksParams::test_small();
        let cfg = EngineConfig::a100(Variant::TensorCore);
        for workers in [1usize, 2, 5] {
            let mut host = host(&cfg, 4, workers, ExecBackend::HostParallel);
            let _ = drain(&mut host, &params, &[8usize, 3, 1]);
            let s = host.steals();
            assert!(s.planned_rows > 0, "planned real work");
            assert_eq!(
                s.planned_rows, s.executed_rows,
                "workers={workers}: every planned unit must execute exactly once"
            );
            assert!(
                s.stolen_rows <= s.executed_rows,
                "stolen work is a subset of executed work"
            );
            if workers == 1 {
                assert_eq!(s.steals, 0, "a lone worker has nobody to steal from");
            }
        }
        // A pure-thief worker (workers > devices where device 0 owns the
        // only engine) *must* steal: it has no deque traffic of its own.
        let mut host = host(&cfg, 1, 2, ExecBackend::HostParallel);
        let _ = drain(&mut host, &params, &[16usize, 16, 16, 16]);
        let s = host.steals();
        assert_eq!(s.planned_rows, s.executed_rows);
        assert!(
            s.steals > 0,
            "a worker with no owned device only eats by stealing: {s:?}"
        );
    }

    #[test]
    fn caps_name_the_backend() {
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let host = HostParallelExecutor::new(cfg.clone(), 2, 2, ExecBackend::HostParallel);
        assert_eq!(host.caps().backend, "host-parallel");
        assert_eq!(host.caps().devices, 2);
        assert_eq!(host.workers(), 2);
        assert_eq!(host.rows_cap(), DEFAULT_ROWS_CAP);
        assert_eq!(host.rows_cap(), 0, "default is uncapped full width");
        let scalar = HostParallelExecutor::new(cfg, 1, 1, ExecBackend::HostScalar);
        assert_eq!(scalar.caps().backend, "host-scalar");
    }

    #[test]
    fn workers_beyond_devices_are_kept_and_reported() {
        // Regression: `with_rows_cap` used to clamp workers to devices
        // silently, so a user asking for 8 workers over 4 devices saw the
        // requested number in `caps()` but got 4 threads. Host executors
        // now keep every worker (surplus ones steal).
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let host = HostParallelExecutor::new(cfg, 4, 8, ExecBackend::HostParallel);
        assert_eq!(host.workers(), 8);
        assert_eq!(host.caps().workers, 8, "caps must report actual threads");
    }

    #[test]
    #[should_panic(expected = "host backend")]
    fn sim_backend_rejected() {
        let cfg = EngineConfig::a100(Variant::TensorCore);
        let _ = HostParallelExecutor::new(cfg, 1, 1, ExecBackend::Sim);
    }
}
