//! The TensorFHE engine — the paper's contribution layer.
//!
//! `tensorfhe-core` glues the substrates together exactly as §IV-E
//! describes:
//!
//! * **Kernel layer** ([`tracer`]) — translates the seven CKKS kernels into
//!   simulated GPU launches. The NTT kernel has three lowerings matching
//!   Table IV: butterfly launches (TensorFHE-NT), two modular GEMMs + a
//!   twiddle Hadamard (TensorFHE-CO), or the five-stage segmented
//!   tensor-core pipeline with 16 plane GEMMs across 16 streams
//!   (full TensorFHE, Fig. 8).
//! * **Schedule generator** ([`schedule`]) — a parameter-level mirror of the
//!   evaluator's kernel emission (Algorithms 1–6), validated against real
//!   execution traces; it lets paper-scale workloads (N = 2^16, L = 44,
//!   batch 128) be *costed* without executing the arithmetic
//!   (`ExecMode::TimingOnly`).
//! * **API layer** ([`api`]) — decomposes operation requests into kernel
//!   workflows, picks the VRAM-feasible batch size (§IV-E), runs the
//!   engine, and reports per-operation statistics.
//! * **Operation-level batching** ([`engine`]) — the `(L, B, N)` vs
//!   `(B, L, N)` layout switch of Fig. 9 and the batch-size machinery of
//!   Fig. 14.
//!
//! # Examples
//!
//! ```
//! use tensorfhe_core::api::TensorFhe;
//! use tensorfhe_core::engine::{EngineConfig, Variant};
//! use tensorfhe_ckks::CkksParams;
//!
//! // Cost one batched HMULT at small parameters on the simulated A100.
//! let params = CkksParams::test_small();
//! let mut api = TensorFhe::new(&params, EngineConfig::a100(Variant::TensorCore));
//! let report = api.run_op(tensorfhe_core::api::FheOp::HMult, params.max_level(), 8);
//! assert!(report.time_us > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod engine;
pub mod multi_gpu;
pub mod schedule;
pub mod tracer;

pub use api::{FheOp, OpReport, TensorFhe};
pub use engine::{Engine, EngineConfig, ExecMode, Layout, Variant};
pub use multi_gpu::{MultiGpu, MultiGpuStats};
