//! The TensorFHE engine — the paper's contribution layer, fronted by a
//! request-stream service.
//!
//! `tensorfhe-core` glues the substrates together as §IV-E describes, and
//! exposes them the way the paper frames the API layer: clients send
//! streams of FHE operation *requests*; the system decomposes them, picks
//! the batch size, and invokes the kernel workflows.
//!
//! * **Kernel layer** ([`tracer`]) — translates the seven CKKS kernels into
//!   simulated GPU launches. The NTT kernel has three lowerings matching
//!   Table IV: butterfly launches (TensorFHE-NT), two modular GEMMs + a
//!   twiddle Hadamard (TensorFHE-CO), or the five-stage segmented
//!   tensor-core pipeline with 16 plane GEMMs across 16 streams
//!   (full TensorFHE, Fig. 8).
//! * **Schedule generator** ([`schedule`]) — a parameter-level mirror of the
//!   evaluator's kernel emission (Algorithms 1–6), validated against real
//!   execution traces; it lets paper-scale workloads (N = 2^16, L = 44,
//!   batch 128) be *costed* without executing the arithmetic
//!   (`ExecMode::TimingOnly`).
//! * **API layer** ([`api`]) — [`TensorFhe::builder`] configures params,
//!   device model, NTT variant, layout, execution mode, device count and
//!   the scheduler policy ([`TensorFheBuilder::sched`] takes a typed
//!   [`SchedPolicy`]); [`api::TensorFhe`] remains as the single-caller
//!   handle for costing one schedule at a time
//!   ([`api::TensorFhe::schedule_of`] → `run_schedule` →
//!   [`OpReport::from_stats`]).
//! * **Request service** ([`service`]) — the batching front end:
//!   [`service::FheService`] enqueues [`service::FheRequest`]s from many
//!   clients, coalesces compatible ones (same op, same level) into
//!   VRAM-feasible batches, dispatches them through the executor seam, and
//!   reports per-request cost plus service-level stats (queue latency,
//!   batch-fill efficiency, per-device utilization, aggregate ops/s and
//!   ops/W, pipeline overlap).
//! * **Pipelined scheduler** ([`sched`]) — the in-flight window between
//!   the queue and the executor: up to `depth` independent coalesced
//!   batches stay submitted-but-unjoined at once (GME-style multi-queue
//!   dispatch), joined in submission order. An opt-in out-of-order
//!   admission mode ([`sched::AdmissionMode::OutOfOrder`]) adds a
//!   scoreboard that admits past a key-blocked head; see the
//!   architecture section below.
//! * **Executor seam** ([`exec`]) — the pluggable "run a scheduled batch on
//!   a device" contract; see the architecture section below.
//! * **Operation-level batching** ([`engine`]) — the `(L, B, N)` vs
//!   `(B, L, N)` layout switch of Fig. 9 and the batch-size machinery of
//!   Fig. 14; [`multi_gpu`] shards batches across devices (§VII) as a thin
//!   configuration over [`exec`].
//! * **Session tier** ([`session`]) — the multi-tenant layer over the
//!   service: registered [`session::ClientSession`]s with parameter-derived
//!   switch/rotation key-set footprints, a per-device LRU
//!   [`session::KeyCache`] that charges host→device key uploads to the
//!   overlap clock, deficit-round-robin fair scheduling with per-session
//!   deadline classes, and bounded-queue admission control; see the
//!   residency & fairness section below.
//! * **Errors** ([`error`]) — every fallible entry point returns
//!   [`error::CoreError`] instead of panicking.
//!
//! # Architecture: request → session/admission → coalesce → schedule → executor → device
//!
//! ```text
//! clients ──submit──▶ admission ──▶ FheService queue ──fair pick──▶ coalesce
//!  (session or anon)  (queue caps:    (FIFO slots)     (DRR quanta,  (policy-ordered,
//!                      Rejected)                        urgent EDF,   key-affine)
//!                                                       shedding)        │
//!                                                        ┌──────────────┘
//!                                                        ▼
//!                                           BatchPlan (+ key-upload µs)
//!                                                        │ Scheduler::admit
//!                                          ┌─────────────┴──────────────┐
//!                                          │  in-flight window (depth)  │
//!                                          │  independent batches only  │
//!                                          └─────────────┬──────────────┘
//!                                                        │ Executor::submit / try_join
//!                  ┌─────────────────────────┬───────────┴────────────┐
//!                  ▼                         ▼                        ▼
//!            SimExecutor               ThreadedPool          HostParallelExecutor
//!       (serial, calling thread)  (one worker thread     (worker threads + real
//!                  │                  per device)          Montgomery/Barrett GEMMs)
//!                  │                         │                        │
//!                  └────────────── per-device ────────────────────────┘
//!                                Engine → DeviceSim
//! ```
//!
//! 1. **Request**: clients [`service::FheService::submit`] typed
//!    [`service::FheRequest`]s — anonymously (`FheRequest::new`), or
//!    inside a registered [`session::ClientSession`]
//!    (`FheRequest::in_session`); the queue preserves FIFO order across
//!    tenants.
//! 2. **Admission**: a session submission past its
//!    [`session::SessionConfig::queue_cap`] or the service-wide
//!    [`TensorFheBuilder::global_queue_cap`] is never queued — its handle
//!    reports [`service::RequestStatus::Rejected`]. Queued deadline-class
//!    work whose budget expires before any instance runs is *shed* at
//!    fill time ([`service::RequestStatus::Shed`]). Anonymous traffic is
//!    never admission-controlled.
//! 3. **Fair pick**: with sessions registered, each batch slot goes to a
//!    bucket chosen by deficit round robin (quantum ∝
//!    [`session::SessionConfig::weight`]) — unless a deadline session's
//!    slack has dropped below a quarter of its budget, in which case the
//!    earliest-slack session pre-empts the round and may ship a
//!    partially-filled, same-session-only batch. With no sessions the
//!    pre-session FIFO walk runs verbatim (bit-identical results).
//! 4. **Coalesce**: the [`sched::Scheduler`]'s planning walk folds
//!    compatible requests (same op, same level) into VRAM-feasible
//!    [`exec::ExecBatch`]es up to `auto_batch × devices` — exactly the
//!    batches the synchronous drain always formed. Under the session tier
//!    the walk order is policy-driven
//!    ([`session::CoalescePolicy::KeyAffinity`] leads with the chosen
//!    bucket's whole backlog; `Blind` walks queue order), and the
//!    [`session::KeyCache`] places the batch's key sets on the shard
//!    devices, charging any host→device upload to the plan.
//! 5. **Schedule**: up to `depth` planned batches
//!    ([`TensorFheBuilder::pipeline_depth`] / `TENSORFHE_PIPELINE`) stay
//!    submitted-but-unjoined at once, **if independent**: no two in-flight
//!    batches may contain requests from the same client stream at the same
//!    ciphertext level, so chained operations on one working set observe
//!    program order (a dependent batch waits for the window to drain).
//!    Handles are joined in deterministic submission order, which keeps
//!    reports and request accounting bit-identical at every depth; the
//!    per-device-FIFO overlap clock separately reports what pipelining
//!    bought ([`service::ServiceStats::elapsed_us`] /
//!    [`service::ServiceStats::overlap_fraction`] /
//!    [`service::ServiceStats::pipelined_ops_per_second`]).
//!
//!    5a. **Scoreboard admission** (opt-in,
//!    [`SchedPolicy::admission`]`(`[`sched::AdmissionMode::OutOfOrder`]`)`
//!    / `TENSORFHE_ADMISSION=ooo`): when the *next serial* plan is
//!    key-blocked, the serial planning walk keeps running speculatively —
//!    each planned batch is *frozen* into a bounded pending scoreboard
//!    ([`SchedPolicy::lookahead`] deep) with its reservations, key
//!    placements and DRR charges already applied, so batch composition is
//!    identical to in-order mode. Admission then picks from the
//!    scoreboard under a fixed **greedy-then-oldest** rule: prefer a
//!    key-eligible plan in the same `(op, level)` group as the most
//!    recently admitted batch (back-to-back same-shape gangs), else the
//!    oldest key-eligible plan — where *key-eligible* means the plan's
//!    `(client, level)` keys are disjoint from every in-flight batch
//!    *and* every older pending plan (program order within a client
//!    stream is never reordered). Every admission bumps a `bypassed`
//!    counter on each older plan that was eligible at that instant; once
//!    any counter reaches [`SchedPolicy::aging_bound`], only plans at or
//!    before the starving one may admit, so no plan is bypassed more
//!    than `aging_bound` times. Joins still pop the window in admission
//!    order, but results park in a reorder buffer and **settle in serial
//!    plan order** — the float folds that produce reports and stats run
//!    in exactly the in-order sequence, which is why out-of-order drains
//!    are report-bit-identical to in-order at every depth/worker count.
//!    [`service::ServiceStats::reorder_distance`] and
//!    [`service::ServiceStats::head_blocked_us`] report what the
//!    scoreboard did; deadline sessions are refused while out-of-order
//!    work is in flight (their urgency clock reads settle time), and a
//!    service with deadline sessions registered falls back to the
//!    in-order fill verbatim.
//! 6. **Executor**: every batch crosses the [`exec::Executor`] seam —
//!    `submit(batch) → ExecHandle`, `join`/`try_join``(handle) →
//!    BatchResult`, any number of batches outstanding, FIFO per device —
//!    which owns sharding ([`exec::shard_widths`]) and the deterministic
//!    device-order merge ([`exec::merge_shards`]). The
//!    [`exec::SimExecutor`] runs shards serially; the
//!    [`exec::ThreadedPool`] ([`TensorFheBuilder::workers`] /
//!    `TENSORFHE_WORKERS`) runs one worker thread per device with
//!    bit-identical results, because each device's simulator sees the same
//!    launch sequence and the merge folds in the same order.
//!
//!    6a. **Backend selection** ([`TensorFheBuilder::backend`] /
//!    `TENSORFHE_BACKEND`): [`exec::ExecBackend::Sim`] (the default)
//!    picks between the two simulated executors above by worker count.
//!    [`exec::ExecBackend::HostParallel`] routes every batch through the
//!    [`exec::HostParallelExecutor`] — the same sharding, worker-thread
//!    and device-order-merge machinery, but each worker additionally
//!    *executes* the batch's batched-NTT and basis-conversion GEMMs with
//!    real cache-blocked, register-tiled Montgomery `u64` arithmetic
//!    (`tensorfhe_math::gemm_fast`), staged through thread-local scratch
//!    arenas (`tensorfhe_math::scratch`);
//!    [`exec::ExecBackend::HostScalar`] pins the same executor to the
//!    Barrett scalar reference kernels, the baseline the
//!    `fig14_host_gemm` bench measures the fast kernels against. Reports
//!    and stats stay bit-identical across all three backends — the host
//!    backends add only wall-clock and the [`exec::HostWorkStats`]
//!    counters, whose checksum is itself invariant across worker counts
//!    and kernel flavours (the Montgomery kernels are proven
//!    bit-identical to Barrett).
//!
//!    The host executor runs **full-width by default**
//!    ([`TensorFheBuilder::rows_cap`] / `TENSORFHE_ROWS_CAP`, `0` =
//!    uncapped) and drains real work through a **work-stealing chunk
//!    pool**: at submit time each kernel event's real rows are split
//!    into fixed-size row-chunks (~16 Ki elements each) and pushed onto
//!    the owning worker's deque; owners pop their own deque LIFO (the
//!    freshly pushed chunk is cache-warm), idle workers steal FIFO from
//!    the most loaded peer, and workers beyond the device count act as
//!    pure thieves. Stealing crosses devices but only for the *real
//!    arithmetic* — the stateful device simulators stay pinned to their
//!    owning worker thread, so the simulated launch sequence (and with
//!    it every report) is untouched by who computed which rows. Chunk
//!    checksums are folded with position-salted terms, so the combined
//!    [`exec::HostWorkStats`] checksum is invariant to chunk boundaries,
//!    steal interleavings and worker counts; [`exec::StealStats`]
//!    exposes the telemetry (`steals`, `stolen_rows`) plus the
//!    work-conservation ledger (`planned_rows == executed_rows`, which
//!    *is* deterministic and asserted in tests and benches).
//! 7. **Device**: each shard becomes kernel launches on a per-device
//!    [`Engine`]/`DeviceSim` pair. A real CUDA/CUTLASS or wgpu backend
//!    slots in *here*: implement [`exec::Executor`] over real device
//!    queues (the batched `B×L` GEMM shapes map 1:1 onto grouped-GEMM
//!    calls, and the multi-outstanding `submit`/`try_join` contract maps
//!    onto stream events) and hand it the same `ExecBatch`es —
//!    coalescing, scheduling, attribution and reporting above the seam
//!    are backend-agnostic. The [`exec::HostParallelExecutor`] is the
//!    working template: it already runs real GEMM arithmetic behind the
//!    seam with bit-identical reports. Contexts, NTT and basis-conversion plans, and
//!    DFT matrices are shared across workers through the `Send + Sync`
//!    process-wide `PlanCache` / DFT caches.
//!
//! # Residency model & fairness policy
//!
//! **Residency.** A session's footprint is its hybrid-key-switching key
//! set: `dnum` digit keys of `2 × (L+1+K)` limb-polynomials each, times
//! one relinearization key plus one rotation key per registered galois
//! step (defaulting to the power-of-two ± step set,
//! `2·log2(N/2)` steps). Each simulated device holds an LRU
//! [`session::KeyCache`] slice of VRAM
//! ([`session::KEY_CACHE_VRAM_FRACTION`], overridable via
//! [`TensorFheBuilder::key_cache_mb`] / `TENSORFHE_KEY_CACHE_MB`). At
//! plan time the cache *places* the batch's sessions on the devices the
//! batch will shard across, preferring the devices already holding the
//! most of those bytes; misses evict LRU sets and charge a PCIe DMA
//! (`tensorfhe_gpu::H2D_BANDWIDTH_GBPS`) to the batch's gang start in
//! the overlap clock — compute cost stays history-free, upload cost is
//! pure schedule state. Footprints larger than the whole cache stream:
//! they pay the DMA on every use and are never resident. Hits, misses,
//! evictions and uploaded bytes surface in
//! [`service::ServiceStats`] and the per-event
//! [`service::FheService::residency_trace`].
//!
//! **Fairness.** One deficit-round-robin bucket per session plus one for
//! anonymous traffic; a bucket accumulates `weight × batch_cap` deficit
//! per round and spends it on the batch widths it ships, so over any
//! backlogged interval a session's service share converges to its weight
//! share regardless of how many requests a tenant floods
//! ([`service::ServiceStats::fairness_index`] reports Jain's index over
//! served ops). Deadline classes overlay DRR: a session whose oldest
//! request has burned 75 % of its budget jumps the round
//! earliest-slack-first and ships alone — partially filled if need be —
//! without being charged deficit; expired untouched work is shed, late
//! completions count as [`service::ServiceStats::deadline_misses`].
//!
//! # Determinism invariants and how they're enforced
//!
//! Every number this crate reports is a pure function of the request
//! stream and the configuration — never of wall-clock time, hash seeds,
//! thread interleaving, or the environment. The invariants:
//!
//! * **No ambient time.** Simulated microseconds flow through explicit
//!   state (`DeviceSim`, the overlap clock); only `crates/bench` may read
//!   the host clock.
//! * **No ambient randomness.** Every RNG is caller-seeded
//!   (`StdRng::seed_from_u64`); OS entropy never reaches a result.
//! * **No order-dependent hash iteration.** Result-affecting collections
//!   that are iterated use `Vec`/`BTreeMap` (e.g.
//!   [`service::ServiceStats::per_session_ops`] is a `Vec` pinned to
//!   session registration order); `HashMap`s survive only for keyed
//!   lookup and say so at their declaration.
//! * **Bit-identity across the matrix.** Worker count
//!   (`TENSORFHE_WORKERS`), pipeline depth (`TENSORFHE_PIPELINE`) and
//!   admission mode (`TENSORFHE_ADMISSION`) change wall-clock overlap,
//!   never result bits — enforced by the determinism/pipeline/ooo test
//!   suites over the workers × depth × admission grid.
//! * **Schedule structure.** The [`sched::Scheduler`] records a
//!   [`sched::BatchRecord`] trace (admission/join ticks, window
//!   membership, gang placements, upload charges) that
//!   `tensorfhe-analyze` replays structurally: per-device intervals
//!   non-overlapping and monotone, gang starts at
//!   `max(join frontier, device free times)`, joins in submission order,
//!   key uploads charged exactly once per sessioned gang and never for
//!   anonymous plans, no two in-flight batches sharing a
//!   `(client, level)` key, and the ops ledger closed
//!   (`submitted = completed + shed + rejected + pending`).
//! * **Reorder invariants.** Under out-of-order admission the trace
//!   additionally proves: program order within a client stream is never
//!   violated (same-key batches admit in serial plan order), no plan is
//!   bypassed more than the aging bound, the greedy-then-oldest priority
//!   rule replays *exactly* (the verifier re-simulates every
//!   freeze/admit/join event and rejects any admission the rule would
//!   not have made), and in-order mode stays degenerate (every batch
//!   admits the instant it is planned, zero reorder distance). See
//!   `tensorfhe_analyze::verify`.
//!
//! They are enforced mechanically, not by convention. The
//! `tensorfhe-analyze` crate ships `tfhe-lint`, which walks the
//! workspace in CI (`--deny-all`) with six lints:
//!
//! | id | name | rule |
//! |---|---|---|
//! | L001 | `ambient-time` | no `Instant`/`SystemTime` outside `crates/bench` |
//! | L002 | `ambient-randomness` | no `thread_rng`/`from_entropy`/`OsRng`… in crate src |
//! | L003 | `ordered-iteration` | no iterated `HashMap`/`HashSet` in result-affecting src |
//! | L004 | `undocumented-unsafe` | `unsafe` needs a `// SAFETY:` comment |
//! | L005 | `unjustified-allow` | `#[allow]` needs a justification comment |
//! | L006 | `ambient-env` | `env::var` only in sanctioned paths |
//!
//! Sanctioned exceptions are either inline —
//! `// lint: <slug> (reason)` on or directly above the line, where
//! `<slug>` is the lint's suppression name (`ordered-ok`, `time-ok`,
//! `random-ok`, `env-ok`) and the parenthesized reason is mandatory — or
//! an entry in the workspace-root `tfhe-lint.allow` file
//! (`<code|*> <path> [# why]`). The schedule invariants are checked by
//! `tensorfhe_analyze::verify_service` in the integration suites here,
//! fuzzed across random multi-session streams in
//! `tensorfhe-analyze`'s own tests, and re-audited on the bench-smoke
//! schedules by the `check_regression` perf gate.
//!
//! # Migrating from `run_op` to `submit`/`drain`
//!
//! Seed-era code chose its own batch and called the (now removed)
//! `run_op` shim. Code that genuinely wants to *cost one schedule at a
//! fixed width* — benchmarks, calibration — makes the three underlying
//! calls itself:
//!
//! ```
//! use tensorfhe_core::api::{FheOp, OpReport, TensorFhe};
//! use tensorfhe_ckks::CkksParams;
//!
//! let params = CkksParams::test_small();
//! let mut api = TensorFhe::builder(&params).build()?;
//! let (op, level, batch) = (FheOp::HMult, params.max_level(), 8);
//! let events = api.schedule_of(op, level);
//! let stats = api.engine_mut().run_schedule(op.name(), &events, batch);
//! let report = OpReport::from_stats(op, batch, api.engine().config().device.power_watts, stats);
//! assert!(report.time_us > 0.0);
//! # Ok::<(), tensorfhe_core::error::CoreError>(())
//! ```
//!
//! Everything else submits requests and lets the system batch:
//!
//! ```
//! use tensorfhe_core::api::{FheOp, TensorFhe};
//! use tensorfhe_core::service::FheRequest;
//! use tensorfhe_ckks::CkksParams;
//!
//! let params = CkksParams::test_small();
//! let mut svc = TensorFhe::builder(&params).service()?;
//! let level = params.max_level();
//! svc.submit(FheRequest::new(FheOp::HMult, level, 12, "alice"))?;
//! svc.submit(FheRequest::new(FheOp::HRotate, level, 4, "bob"))?;
//! let reports = svc.drain();
//! assert_eq!(reports.len(), 2);
//! assert!(svc.stats().ops_per_second > 0.0);
//! # Ok::<(), tensorfhe_core::error::CoreError>(())
//! ```
//!
//! | seed API | service API |
//! |---|---|
//! | `TensorFhe::new(&params, EngineConfig::a100(v))` | `TensorFhe::builder(&params).variant(v).build()?` |
//! | `MultiGpu::new(cfg, n, &params)` (panicked on 0) | `MultiGpu::new(cfg, n, &params)?` or `builder.devices(n).service()?` |
//! | caller-chosen `run_op(op, level, batch)` | `submit(FheRequest)` + `drain()` |
//! | fixed-width costing via `run_op` | `schedule_of` + `run_schedule` + `OpReport::from_stats` |
//! | `.workers(w).pipeline_depth(d)` | `.sched(SchedPolicy::new().workers(w).pipeline_depth(d))` (shims remain) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod engine;
pub mod error;
pub mod exec;
pub mod multi_gpu;
pub mod sched;
pub mod schedule;
pub mod service;
pub mod session;
pub mod tracer;

pub use api::{FheOp, OpReport, TensorFhe, TensorFheBuilder};
pub use engine::{Engine, EngineConfig, ExecMode, Layout, Variant};
pub use error::{CoreError, CoreResult};
pub use exec::{
    BatchResult, ExecBackend, ExecBatch, ExecHandle, Executor, HostParallelExecutor, HostWorkStats,
    SimExecutor, ThreadedPool,
};
pub use multi_gpu::{MultiGpu, MultiGpuStats};
pub use sched::{AdmissionMode, SchedPolicy};
pub use service::{FheRequest, FheService, RequestId, RequestReport, RequestStatus, ServiceStats};
pub use session::{
    ClientSession, CoalescePolicy, KeyCache, ResidencyEvent, SessionConfig, SessionId,
};
