//! The TensorFHE engine — the paper's contribution layer, fronted by a
//! request-stream service.
//!
//! `tensorfhe-core` glues the substrates together as §IV-E describes, and
//! exposes them the way the paper frames the API layer: clients send
//! streams of FHE operation *requests*; the system decomposes them, picks
//! the batch size, and invokes the kernel workflows.
//!
//! * **Kernel layer** ([`tracer`]) — translates the seven CKKS kernels into
//!   simulated GPU launches. The NTT kernel has three lowerings matching
//!   Table IV: butterfly launches (TensorFHE-NT), two modular GEMMs + a
//!   twiddle Hadamard (TensorFHE-CO), or the five-stage segmented
//!   tensor-core pipeline with 16 plane GEMMs across 16 streams
//!   (full TensorFHE, Fig. 8).
//! * **Schedule generator** ([`schedule`]) — a parameter-level mirror of the
//!   evaluator's kernel emission (Algorithms 1–6), validated against real
//!   execution traces; it lets paper-scale workloads (N = 2^16, L = 44,
//!   batch 128) be *costed* without executing the arithmetic
//!   (`ExecMode::TimingOnly`).
//! * **API layer** ([`api`]) — [`TensorFhe::builder`] configures params,
//!   device model, NTT variant, layout, execution mode and device count;
//!   [`api::TensorFhe::run_op`] remains as the single-caller shim.
//! * **Request service** ([`service`]) — the batching front end:
//!   [`service::FheService`] enqueues [`service::FheRequest`]s from many
//!   clients, coalesces compatible ones (same op, same level) into
//!   VRAM-feasible batches, dispatches them through the executor seam, and
//!   reports per-request cost plus service-level stats (queue latency,
//!   batch-fill efficiency, per-device utilization, aggregate ops/s and
//!   ops/W, pipeline overlap).
//! * **Pipelined scheduler** ([`sched`]) — the in-flight window between
//!   the queue and the executor: up to `depth` independent coalesced
//!   batches stay submitted-but-unjoined at once (GME-style multi-queue
//!   dispatch), joined in submission order; see the architecture section
//!   below.
//! * **Executor seam** ([`exec`]) — the pluggable "run a scheduled batch on
//!   a device" contract; see the architecture section below.
//! * **Operation-level batching** ([`engine`]) — the `(L, B, N)` vs
//!   `(B, L, N)` layout switch of Fig. 9 and the batch-size machinery of
//!   Fig. 14; [`multi_gpu`] shards batches across devices (§VII) as a thin
//!   configuration over [`exec`].
//! * **Errors** ([`error`]) — every fallible entry point returns
//!   [`error::CoreError`] instead of panicking.
//!
//! # Architecture: request → coalesce → schedule → executor → device
//!
//! ```text
//! clients ──submit──▶ FheService queue ──coalesce──▶ BatchPlan
//!                                                        │ Scheduler::admit
//!                                          ┌─────────────┴──────────────┐
//!                                          │  in-flight window (depth)  │
//!                                          │  independent batches only  │
//!                                          └─────────────┬──────────────┘
//!                                                        │ Executor::submit / try_join
//!                            ┌───────────────────────────┴────────────┐
//!                            ▼                                        ▼
//!                      SimExecutor                               ThreadedPool
//!                 (serial, calling thread)             (one worker thread per device)
//!                            │                                        │
//!                            └───────────── per-device ───────────────┘
//!                                       Engine → DeviceSim
//! ```
//!
//! 1. **Request**: clients [`service::FheService::submit`] typed
//!    [`service::FheRequest`]s; the queue preserves FIFO order across
//!    tenants.
//! 2. **Coalesce**: the [`sched::Scheduler`]'s planning walk folds
//!    compatible requests (same op, same level) into VRAM-feasible
//!    [`exec::ExecBatch`]es up to `auto_batch × devices` — exactly the
//!    batches the synchronous drain always formed.
//! 3. **Schedule**: up to `depth` planned batches
//!    ([`TensorFheBuilder::pipeline_depth`] / `TENSORFHE_PIPELINE`) stay
//!    submitted-but-unjoined at once, **if independent**: no two in-flight
//!    batches may contain requests from the same client stream at the same
//!    ciphertext level, so chained operations on one working set observe
//!    program order (a dependent batch waits for the window to drain).
//!    Handles are joined in deterministic submission order, which keeps
//!    reports and request accounting bit-identical at every depth; the
//!    per-device-FIFO overlap clock separately reports what pipelining
//!    bought ([`service::ServiceStats::elapsed_us`] /
//!    [`service::ServiceStats::overlap_fraction`] /
//!    [`service::ServiceStats::pipelined_ops_per_second`]).
//! 4. **Executor**: every batch crosses the [`exec::Executor`] seam —
//!    `submit(batch) → ExecHandle`, `join`/`try_join``(handle) →
//!    BatchResult`, any number of batches outstanding, FIFO per device —
//!    which owns sharding ([`exec::shard_widths`]) and the deterministic
//!    device-order merge ([`exec::merge_shards`]). The
//!    [`exec::SimExecutor`] runs shards serially; the
//!    [`exec::ThreadedPool`] ([`TensorFheBuilder::workers`] /
//!    `TENSORFHE_WORKERS`) runs one worker thread per device with
//!    bit-identical results, because each device's simulator sees the same
//!    launch sequence and the merge folds in the same order.
//! 5. **Device**: each shard becomes kernel launches on a per-device
//!    [`Engine`]/`DeviceSim` pair. A real CUDA/CUTLASS or wgpu backend
//!    slots in *here*: implement [`exec::Executor`] over real device
//!    queues (the batched `B×L` GEMM shapes map 1:1 onto grouped-GEMM
//!    calls, and the multi-outstanding `submit`/`try_join` contract maps
//!    onto stream events) and hand it the same `ExecBatch`es —
//!    coalescing, scheduling, attribution and reporting above the seam
//!    are backend-agnostic. Contexts, NTT and basis-conversion plans, and
//!    DFT matrices are shared across workers through the `Send + Sync`
//!    process-wide `PlanCache` / DFT caches.
//!
//! # Migrating from `run_op` to `submit`/`drain`
//!
//! Seed-era code chose its own batch and called `run_op`:
//!
//! ```
//! use tensorfhe_core::api::{FheOp, TensorFhe};
//! use tensorfhe_ckks::CkksParams;
//!
//! let params = CkksParams::test_small();
//! let mut api = TensorFhe::builder(&params).build()?;
//! let report = api.run_op(FheOp::HMult, params.max_level(), 8);
//! assert!(report.time_us > 0.0);
//! # Ok::<(), tensorfhe_core::error::CoreError>(())
//! ```
//!
//! Service-era code submits requests and lets the system batch:
//!
//! ```
//! use tensorfhe_core::api::{FheOp, TensorFhe};
//! use tensorfhe_core::service::FheRequest;
//! use tensorfhe_ckks::CkksParams;
//!
//! let params = CkksParams::test_small();
//! let mut svc = TensorFhe::builder(&params).service()?;
//! let level = params.max_level();
//! svc.submit(FheRequest::new(FheOp::HMult, level, 12, "alice"))?;
//! svc.submit(FheRequest::new(FheOp::HRotate, level, 4, "bob"))?;
//! let reports = svc.drain();
//! assert_eq!(reports.len(), 2);
//! assert!(svc.stats().ops_per_second > 0.0);
//! # Ok::<(), tensorfhe_core::error::CoreError>(())
//! ```
//!
//! | seed API | service API |
//! |---|---|
//! | `TensorFhe::new(&params, EngineConfig::a100(v))` | `TensorFhe::builder(&params).variant(v).build()?` |
//! | `MultiGpu::new(cfg, n, &params)` (panicked on 0) | `MultiGpu::new(cfg, n, &params)?` or `builder.devices(n).service()?` |
//! | caller-chosen `run_op(op, level, batch)` | `submit(FheRequest)` + `drain()` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod engine;
pub mod error;
pub mod exec;
pub mod multi_gpu;
pub mod sched;
pub mod schedule;
pub mod service;
pub mod tracer;

pub use api::{FheOp, OpReport, TensorFhe, TensorFheBuilder};
pub use engine::{Engine, EngineConfig, ExecMode, Layout, Variant};
pub use error::{CoreError, CoreResult};
pub use exec::{BatchResult, ExecBatch, ExecHandle, Executor, SimExecutor, ThreadedPool};
pub use multi_gpu::{MultiGpu, MultiGpuStats};
pub use service::{FheRequest, FheService, RequestId, RequestReport, RequestStatus, ServiceStats};
