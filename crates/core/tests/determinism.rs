//! Serial-vs-threaded drain determinism.
//!
//! The executor seam promises that the worker count changes host
//! wall-clock only: a `drain` served by the [`ThreadedPool`] must produce
//! **bit-identical** `RequestReport`s and `ServiceStats` to the serial
//! `SimExecutor` path — ids, completion order, float stats down to the last
//! bit, launch counts, per-kernel tables. These tests pin that contract
//! across seeded pseudo-random streams and a ragged-queue property suite,
//! plus the per-device utilization invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::service::{FheRequest, FheService, RequestReport, ServiceStats};

const OPS: [FheOp; 6] = [
    FheOp::HAdd,
    FheOp::HMult,
    FheOp::CMult,
    FheOp::HRotate,
    FheOp::Rescale,
    FheOp::Conjugate,
];

fn service(devices: usize, workers: usize) -> FheService {
    TensorFhe::builder(&CkksParams::test_small())
        .devices(devices)
        .workers(workers)
        .service()
        .expect("valid service config")
}

/// Every float as raw bits: equality below means bit-identity, not an
/// epsilon test.
fn report_bits(r: &RequestReport) -> Vec<u64> {
    let mut v = vec![
        r.id.raw(),
        r.client.len() as u64,
        r.level as u64,
        r.queue_us.to_bits(),
        r.batches as u64,
        r.report.batch as u64,
        r.report.time_us.to_bits(),
        r.report.per_op_us.to_bits(),
        r.report.occupancy.to_bits(),
        r.report.energy_j.to_bits(),
        r.report.ops_per_second.to_bits(),
        r.report.ops_per_watt.to_bits(),
        r.report.launches as u64,
    ];
    for (k, t) in &r.report.by_kernel {
        v.extend(k.bytes().map(u64::from));
        v.push(t.to_bits());
    }
    v
}

fn stats_bits(s: &ServiceStats) -> Vec<u64> {
    let mut v = vec![
        s.requests_completed as u64,
        s.ops_completed as u64,
        s.batches_dispatched as u64,
        s.launches as u64,
        s.batch_cap as u64,
        s.devices as u64,
        s.batch_fill.to_bits(),
        s.busy_us.to_bits(),
        s.energy_j.to_bits(),
        s.mean_queue_us.to_bits(),
        s.ops_per_second.to_bits(),
        s.ops_per_watt.to_bits(),
    ];
    // Per-worker accounting must agree too (`workers` itself is allowed to
    // differ — it names the executor, not the results).
    v.extend(s.device_busy_us.iter().map(|t| t.to_bits()));
    v.extend(s.device_utilization.iter().map(|u| u.to_bits()));
    v
}

/// Drives one seeded pseudo-random stream through a service, with a
/// mid-stream drain so queue/clock state is exercised across drains.
fn run_stream(svc: &mut FheService, seed: u64) -> (Vec<RequestReport>, ServiceStats) {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_level = svc.params().max_level();
    let cap = svc.batch_cap();
    let mut reports = Vec::new();
    for phase in 0..2 {
        let requests = rng.gen_range(5..20);
        for i in 0..requests {
            let op = OPS[rng.gen_range(0..OPS.len())];
            let level = rng.gen_range(1..=max_level);
            let count = rng.gen_range(1..=cap * 2);
            svc.submit(FheRequest::new(op, level, count, format!("c{phase}-{i}")))
                .expect("valid request");
        }
        reports.extend(svc.drain());
    }
    (reports, svc.stats())
}

fn assert_identical(serial: &mut FheService, threaded: &mut FheService, seed: u64) {
    let (rs, ss) = run_stream(serial, seed);
    let (rt, st) = run_stream(threaded, seed);
    assert_eq!(rs.len(), rt.len(), "report counts differ at seed {seed}");
    for (a, b) in rs.iter().zip(&rt) {
        assert_eq!(a.client, b.client, "client order differs at seed {seed}");
        assert_eq!(
            report_bits(a),
            report_bits(b),
            "reports diverged at seed {seed}: serial {a:?} vs threaded {b:?}"
        );
    }
    assert_eq!(
        stats_bits(&ss),
        stats_bits(&st),
        "service stats diverged at seed {seed}: {ss:?} vs {st:?}"
    );
}

#[test]
fn threaded_drain_is_bit_identical_to_serial_across_seeds() {
    for seed in [0u64, 1, 7, 42, 1234, 0xDEAD_BEEF] {
        let mut serial = service(4, 1);
        let mut threaded = service(4, 4);
        assert_eq!(serial.workers(), 1);
        assert_eq!(threaded.workers(), 4);
        assert_identical(&mut serial, &mut threaded, seed);
    }
}

#[test]
fn two_worker_pool_over_four_devices_is_identical_too() {
    // Workers need not equal devices: two threads each own two simulators.
    let mut serial = service(4, 1);
    let mut pool = service(4, 2);
    assert_eq!(pool.workers(), 2);
    assert_identical(&mut serial, &mut pool, 99);
}

#[test]
fn single_device_utilization_is_exactly_one() {
    let mut svc = service(1, 1);
    let level = svc.params().max_level();
    svc.submit(FheRequest::new(FheOp::HMult, level, 24, "a"))
        .expect("valid");
    svc.drain();
    let s = svc.stats();
    assert_eq!(s.device_busy_us.len(), 1);
    assert_eq!(
        s.device_utilization,
        vec![1.0],
        "one device is always on the critical path"
    );
    assert_eq!(s.device_busy_us[0].to_bits(), s.busy_us.to_bits());
}

#[test]
fn traced_launch_streams_are_fifo_clean_per_stream() {
    // Every kernel the engine lowers onto the device must land in its
    // stream in FIFO order with non-negative, finite durations — the
    // structural invariant `verify_launch_intervals` pins, here checked
    // over a real traced schedule rather than a synthetic interval list.
    use tensorfhe_ckks::KernelTracer;
    use tensorfhe_core::api::schedule_events;
    use tensorfhe_core::{Engine, EngineConfig, Variant};

    let params = CkksParams::test_small();
    let engine = Engine::new(EngineConfig::a100(Variant::TensorCore));
    let level = params.max_level();
    // Trace through the engine's persistent sim (the Full-mode path);
    // `run_schedule` costing windows run on an isolated zero-based clock
    // and leave no launches behind.
    for op in [FheOp::HMult, FheOp::HRotate, FheOp::Rescale] {
        let events = schedule_events(&params, op, level);
        let mut tracer = engine.make_tracer(4);
        tracer.op_begin(op.name());
        for &e in &events {
            tracer.kernel(e);
        }
    }
    let dev = engine.device();
    dev.borrow_mut().synchronize();
    let intervals: Vec<_> = dev.borrow().intervals().collect();
    assert!(!intervals.is_empty(), "the traced run must launch kernels");
    let report = tensorfhe_analyze::verify_launch_intervals(intervals);
    assert!(report.is_clean(), "launch-stream violations:\n{report}");
}

#[test]
fn device_utilizations_sum_match_attributed_launch_time() {
    // The invariant behind `ServiceStats::device_utilization`: per-device
    // busy times sum exactly to the total device time the executor
    // attributed across every dispatched batch, and each utilization is
    // that device's share of the service's busy window (≤ 1).
    use std::sync::Arc;
    use tensorfhe_core::api::schedule_events;
    use tensorfhe_core::exec::{ExecBatch, Executor, SimExecutor};
    use tensorfhe_core::EngineConfig;

    let mut svc = service(4, 4);
    let level = svc.params().max_level();
    let cap = svc.batch_cap();
    // Two distinct batch shapes: one full, one ragged.
    svc.submit(FheRequest::new(FheOp::HMult, level, cap, "a"))
        .expect("valid");
    svc.submit(FheRequest::new(FheOp::HRotate, level, cap / 2 + 1, "b"))
        .expect("valid");
    svc.drain();
    let s = svc.stats();

    // Independent replay through a fresh serial executor: same batches in
    // the same order must attribute the same per-device time.
    let params = svc.params().clone();
    let mut replay = SimExecutor::new(EngineConfig::a100(tensorfhe_core::Variant::TensorCore), 4);
    let mut expected = vec![0.0f64; 4];
    for (op, width) in [(FheOp::HMult, cap), (FheOp::HRotate, cap / 2 + 1)] {
        let events: Arc<[_]> = schedule_events(&params, op, level).into();
        let h = replay.submit(ExecBatch {
            tag: op.name().into(),
            events,
            width,
        });
        for (d, t) in replay.join(h).per_device_us.iter().enumerate() {
            expected[d] += t;
        }
    }
    for (d, (got, want)) in s.device_busy_us.iter().zip(&expected).enumerate() {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "device {d} busy time diverged from the replayed attribution"
        );
    }
    let total_busy: f64 = s.device_busy_us.iter().sum();
    let util_sum: f64 = s.device_utilization.iter().sum();
    assert!(
        (util_sum * s.busy_us - total_busy).abs() < 1e-9 * total_busy.max(1.0),
        "utilizations must sum-match the attributed device time"
    );
    for (d, u) in s.device_utilization.iter().enumerate() {
        assert!(*u > 0.0, "device {d} served nothing");
        assert!(*u <= 1.0 + 1e-12, "device {d} busier than the wall: {u}");
    }
}

#[test]
fn env_var_selects_the_default_worker_count() {
    // `TENSORFHE_WORKERS` is the CI matrix knob: it supplies the default
    // when the builder does not set one, and never overrides an explicit
    // `.workers(n)`. Env is process-global and other threads of this test
    // binary read it concurrently, so the assertions run in child
    // processes (re-exec of this binary in probe mode with the env fixed
    // at spawn) — this process never mutates its own environment.
    if let Ok(expected) = std::env::var("TENSORFHE_WORKERS_PROBE") {
        if expected == "err" {
            // A malformed override must be a hard error, not a silent
            // serial fallback that would void the CI matrix.
            let err = TensorFhe::builder(&CkksParams::test_small())
                .devices(4)
                .service()
                .expect_err("malformed TENSORFHE_WORKERS must be rejected");
            assert!(matches!(err, tensorfhe_core::CoreError::InvalidConfig(_)));
            return;
        }
        let expected: usize = expected.parse().expect("probe expectation");
        assert_eq!(service_devices_only(4).workers(), expected);
        assert_eq!(
            service(4, 1).workers(),
            1,
            "builder setting must win over env"
        );
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for (workers_env, expected) in [
        (Some("4"), "4"),
        (Some("2"), "2"),
        (Some("1"), "1"),
        (None, "1"),
        (Some("four"), "err"),
    ] {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["env_var_selects_the_default_worker_count", "--exact"])
            .env("TENSORFHE_WORKERS_PROBE", expected)
            .env_remove("TENSORFHE_WORKERS");
        if let Some(v) = workers_env {
            cmd.env("TENSORFHE_WORKERS", v);
        }
        let out = cmd.output().expect("spawn env probe child");
        assert!(
            out.status.success(),
            "probe with TENSORFHE_WORKERS={workers_env:?} failed:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

fn service_devices_only(devices: usize) -> FheService {
    TensorFhe::builder(&CkksParams::test_small())
        .devices(devices)
        .service()
        .expect("valid service config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ragged queues: any mix of operations, levels, counts and client
    /// interleavings must drain identically under the serial executor and
    /// the 4-worker pool — including streams whose final batches are
    /// partially filled and requests spanning several batches.
    #[test]
    fn ragged_queue_drains_identically_serial_vs_threaded(
        requests in 1usize..24,
        seed in 0u64..10_000,
    ) {
        let mut serial = service(4, 1);
        let mut threaded = service(4, 4);
        let max_level = serial.params().max_level();
        let cap = serial.batch_cap();
        let mut rng = StdRng::seed_from_u64(seed);
        let stream: Vec<FheRequest> = (0..requests)
            .map(|i| {
                let op = OPS[rng.gen_range(0..OPS.len())];
                let level = rng.gen_range(1..=max_level);
                let count = rng.gen_range(1..=cap + 3);
                FheRequest::new(op, level, count, format!("c{}", i % 3))
            })
            .collect();
        serial.submit_stream(stream.clone()).expect("valid stream");
        threaded.submit_stream(stream).expect("valid stream");
        let rs = serial.drain();
        let rt = threaded.drain();
        prop_assert_eq!(rs.len(), rt.len());
        for (a, b) in rs.iter().zip(&rt) {
            prop_assert_eq!(report_bits(a), report_bits(b));
        }
        prop_assert_eq!(stats_bits(&serial.stats()), stats_bits(&threaded.stats()));
    }
}
