//! Cross-backend bit-identity: the real-arithmetic host backends vs the
//! simulated executor, across the full scheduler matrix.
//!
//! The backend seam promises that [`ExecBackend`] changes host wall-clock
//! (and the [`HostWorkStats`] counters) only: a `drain` served by the
//! [`tensorfhe_core::exec::HostParallelExecutor`] — fast Montgomery or
//! Barrett scalar kernels — must produce **bit-identical**
//! `RequestReport`s and `ServiceStats` to the simulated path at every
//! workers × pipeline-depth × admission point. These tests pin that
//! contract over seeded pseudo-random streams, plus the worker-count and
//! kernel-flavour independence of the real-work checksum and the
//! `TENSORFHE_BACKEND` env-knob resolution rules.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::exec::ExecBackend;
use tensorfhe_core::sched::{AdmissionMode, SchedPolicy};
use tensorfhe_core::service::{FheRequest, FheService, RequestReport, ServiceStats};

const OPS: [FheOp; 6] = [
    FheOp::HAdd,
    FheOp::HMult,
    FheOp::CMult,
    FheOp::HRotate,
    FheOp::Rescale,
    FheOp::Conjugate,
];

/// Matrix service with a small real-row cap: the raw-bit contracts below
/// are rows_cap-independent (the cap moves only host wall-clock and the
/// work counters), and capped arithmetic keeps the big matrix tractable
/// in debug builds. The dedicated full-width test drains uncapped.
fn service(
    backend: ExecBackend,
    workers: usize,
    depth: usize,
    admission: AdmissionMode,
) -> FheService {
    TensorFhe::builder(&CkksParams::test_small())
        .devices(4)
        .backend(backend)
        .rows_cap(4)
        .sched(
            SchedPolicy::new()
                .workers(workers)
                .pipeline_depth(depth)
                .admission(admission),
        )
        .service()
        .expect("valid service config")
}

/// Full-width service: uncapped real arithmetic (`rows_cap = 0`, the
/// production default), with the batch cap narrowed so the uncapped
/// drain stays tractable in debug builds.
fn full_width_service(
    backend: ExecBackend,
    workers: usize,
    depth: usize,
    admission: AdmissionMode,
) -> FheService {
    TensorFhe::builder(&CkksParams::test_small())
        .devices(4)
        .backend(backend)
        .rows_cap(0)
        .batch_cap(2)
        .sched(
            SchedPolicy::new()
                .workers(workers)
                .pipeline_depth(depth)
                .admission(admission),
        )
        .service()
        .expect("valid service config")
}

/// Every float as raw bits: equality below means bit-identity, not an
/// epsilon test.
fn report_bits(r: &RequestReport) -> Vec<u64> {
    let mut v = vec![
        r.id.raw(),
        r.client.len() as u64,
        r.level as u64,
        r.queue_us.to_bits(),
        r.batches as u64,
        r.report.batch as u64,
        r.report.time_us.to_bits(),
        r.report.per_op_us.to_bits(),
        r.report.occupancy.to_bits(),
        r.report.energy_j.to_bits(),
        r.report.ops_per_second.to_bits(),
        r.report.ops_per_watt.to_bits(),
        r.report.launches as u64,
    ];
    for (k, t) in &r.report.by_kernel {
        v.extend(k.bytes().map(u64::from));
        v.push(t.to_bits());
    }
    v
}

fn stats_bits(s: &ServiceStats) -> Vec<u64> {
    let mut v = vec![
        s.requests_completed as u64,
        s.ops_completed as u64,
        s.batches_dispatched as u64,
        s.launches as u64,
        s.batch_cap as u64,
        s.devices as u64,
        s.pipeline_depth as u64,
        s.reorder_distance as u64,
        s.head_blocked_us.to_bits(),
        s.inflight_hwm as u64,
        s.batch_fill.to_bits(),
        s.busy_us.to_bits(),
        s.energy_j.to_bits(),
        s.mean_queue_us.to_bits(),
        s.ops_per_second.to_bits(),
        s.ops_per_watt.to_bits(),
        s.elapsed_us.to_bits(),
        s.overlap_fraction.to_bits(),
        s.pipelined_ops_per_second.to_bits(),
    ];
    // Per-device accounting must agree too. `workers`/`backend` are
    // allowed to differ — they name the executor, not the results — and
    // so are `steals`/`stolen_rows`/`simd_lanes`: steal counts depend on
    // thread timing and the lane count names the kernel flavour.
    v.extend(s.device_busy_us.iter().map(|t| t.to_bits()));
    v.extend(s.device_utilization.iter().map(|u| u.to_bits()));
    v
}

/// Drives one seeded pseudo-random stream through a service, with a
/// mid-stream drain so queue/clock state is exercised across drains.
fn run_stream(svc: &mut FheService, seed: u64) -> (Vec<RequestReport>, ServiceStats) {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_level = svc.params().max_level();
    let cap = svc.batch_cap();
    let mut reports = Vec::new();
    for phase in 0..2 {
        let requests = rng.gen_range(4..10);
        for i in 0..requests {
            let op = OPS[rng.gen_range(0..OPS.len())];
            let level = rng.gen_range(1..=max_level);
            let count = rng.gen_range(1..=cap * 2);
            svc.submit(FheRequest::new(op, level, count, format!("c{phase}-{i}")))
                .expect("valid request");
        }
        reports.extend(svc.drain());
    }
    (reports, svc.stats())
}

/// The full drain matrix: for each workers × depth × admission point,
/// both host backends must reproduce the simulated backend's reports and
/// stats bit-for-bit (only the `backend` label and `workers` knob may
/// differ), while actually executing real arithmetic.
#[test]
fn host_backends_match_sim_across_sched_matrix() {
    for depth in [1usize, 4] {
        for admission in [AdmissionMode::InOrder, AdmissionMode::OutOfOrder] {
            for workers in [1usize, 4] {
                let mut sim = service(ExecBackend::Sim, workers, depth, admission);
                let (want_reports, want_stats) = run_stream(&mut sim, 0xF1C0 + depth as u64);
                assert!(sim.host_work().is_none(), "sim backend does no host work");
                assert_eq!(want_stats.backend, "sim");

                for backend in [ExecBackend::HostParallel, ExecBackend::HostScalar] {
                    let mut host = service(backend, workers, depth, admission);
                    let (got_reports, got_stats) = run_stream(&mut host, 0xF1C0 + depth as u64);
                    let point =
                        format!("{backend:?} workers={workers} depth={depth} {admission:?}");
                    assert_eq!(
                        got_reports.len(),
                        want_reports.len(),
                        "{point}: report count"
                    );
                    for (g, w) in got_reports.iter().zip(&want_reports) {
                        assert_eq!(report_bits(g), report_bits(w), "{point}: report bits");
                    }
                    assert_eq!(
                        stats_bits(&got_stats),
                        stats_bits(&want_stats),
                        "{point}: stats bits"
                    );
                    assert_eq!(got_stats.backend, backend.label(), "{point}: stats label");
                    let work = host.host_work().expect("host backends report work");
                    assert!(
                        work.ntt_rows > 0 && work.conv_cols > 0,
                        "{point}: must execute real GEMM arithmetic"
                    );
                }
            }
        }
    }
}

/// The full-width corner of the matrix: with `rows_cap = 0` (the
/// production default) every row of every batch executes through the
/// work-stealing chunks, and the drain must *still* be bit-identical to
/// the simulated backend at every workers × depth × admission point —
/// including workers beyond the device count (pure thieves). Work
/// conservation must hold at every point too.
#[test]
fn full_width_drain_matches_sim_across_sched_matrix() {
    for depth in [1usize, 4] {
        for admission in [AdmissionMode::InOrder, AdmissionMode::OutOfOrder] {
            for workers in [1usize, 6] {
                let mut sim = full_width_service(ExecBackend::Sim, workers, depth, admission);
                let (want_reports, want_stats) = run_stream(&mut sim, 0xFA11 + depth as u64);
                let mut host =
                    full_width_service(ExecBackend::HostParallel, workers, depth, admission);
                let (got_reports, got_stats) = run_stream(&mut host, 0xFA11 + depth as u64);
                let point = format!("full-width workers={workers} depth={depth} {admission:?}");
                assert_eq!(got_reports.len(), want_reports.len(), "{point}: count");
                for (g, w) in got_reports.iter().zip(&want_reports) {
                    assert_eq!(report_bits(g), report_bits(w), "{point}: report bits");
                }
                assert_eq!(
                    stats_bits(&got_stats),
                    stats_bits(&want_stats),
                    "{point}: stats bits"
                );
                let steals = host.steal_stats().expect("host backend steals");
                assert!(steals.planned_rows > 0, "{point}: planned real work");
                assert_eq!(
                    steals.planned_rows, steals.executed_rows,
                    "{point}: work conservation (every planned unit executes once)"
                );
                assert!(
                    host.host_work().expect("host backend").did_work(),
                    "{point}: real arithmetic ran"
                );
                assert_eq!(got_stats.simd_lanes, 4, "{point}: SIMD tile label");
                assert_eq!(want_stats.simd_lanes, 0, "sim does no host arithmetic");
            }
        }
    }
}

/// The full-width fold is invariant to worker count (and therefore to
/// chunk placement and steal pattern): the uncapped drains of the matrix
/// above must all produce one `HostWorkStats`.
#[test]
fn full_width_checksum_is_worker_invariant() {
    let mut reference = None;
    for workers in [1usize, 4, 6] {
        let mut svc = full_width_service(
            ExecBackend::HostParallel,
            workers,
            1,
            AdmissionMode::InOrder,
        );
        let _ = run_stream(&mut svc, 0xC0FFEE);
        let work = svc.host_work().expect("host backend");
        assert!(work.did_work());
        match &reference {
            None => reference = Some(work),
            Some(want) => assert_eq!(
                &work, want,
                "workers={workers}: full-width host work diverged"
            ),
        }
    }
}

/// The real-work checksum is a pure function of the submitted stream:
/// identical across worker counts (shards are per-device, not
/// per-worker) and across the fast/scalar kernel flavours (the
/// Montgomery kernels are bit-identical to Barrett).
#[test]
fn host_work_checksum_is_worker_and_kernel_invariant() {
    let mut reference = None;
    for backend in [ExecBackend::HostParallel, ExecBackend::HostScalar] {
        for workers in [1usize, 4] {
            let mut svc = service(backend, workers, 1, AdmissionMode::InOrder);
            let _ = run_stream(&mut svc, 0xBEEF);
            let work = svc.host_work().expect("host backend");
            assert!(work.did_work());
            match &reference {
                None => reference = Some(work),
                Some(want) => assert_eq!(
                    &work, want,
                    "{backend:?} workers={workers}: host work diverged"
                ),
            }
        }
    }
}

/// The dispatch cache must stay disabled on host backends: every repeat
/// of an identical batch re-executes, so the work counters keep growing.
#[test]
fn host_backend_executes_every_repeated_dispatch() {
    let mut svc = service(ExecBackend::HostParallel, 1, 1, AdmissionMode::InOrder);
    let submit_drain = |svc: &mut FheService| {
        svc.submit(FheRequest::new(FheOp::HMult, 3, 2, "repeat"))
            .expect("valid request");
        let _ = svc.drain();
        svc.host_work().expect("host backend")
    };
    let first = submit_drain(&mut svc);
    let second = submit_drain(&mut svc);
    assert!(
        second.ntt_rows > first.ntt_rows,
        "identical batches must re-execute on host backends \
         (first {first:?}, second {second:?})"
    );
}

#[test]
fn env_var_selects_the_default_backend() {
    // `TENSORFHE_BACKEND` joins the `TENSORFHE_WORKERS` / `…_PIPELINE` /
    // `…_ADMISSION` family: it supplies the default when the builder does
    // not set one, and never overrides an explicit `.backend(..)`. Env is
    // process-global and other threads of this test binary read it
    // concurrently, so the assertions run in child processes (re-exec of
    // this binary in probe mode with the env fixed at spawn) — this
    // process never mutates its own environment.
    if let Ok(expected) = std::env::var("TENSORFHE_BACKEND_PROBE") {
        let build = |backend: Option<ExecBackend>| {
            let mut b = TensorFhe::builder(&CkksParams::toy());
            if let Some(be) = backend {
                b = b.backend(be);
            }
            b.service()
        };
        if expected == "err" {
            // A malformed override must be a hard error, not a silent
            // simulated fallback that would void the CI matrix.
            let err = build(None).expect_err("unknown backend must be rejected");
            assert!(matches!(err, tensorfhe_core::CoreError::InvalidConfig(_)));
            assert!(
                err.to_string().contains("TENSORFHE_BACKEND"),
                "error names the knob: {err}"
            );
            return;
        }
        let svc = build(None).expect("valid backend spelling");
        assert_eq!(svc.stats().backend, expected);
        assert_eq!(svc.host_work().is_some(), expected != "sim");
        let svc = build(Some(ExecBackend::Sim)).expect("builder wins");
        assert_eq!(
            svc.stats().backend,
            "sim",
            "builder setting must win over env"
        );
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for (backend_env, expected) in [
        (Some("host-parallel"), "host-parallel"),
        (Some("host-scalar"), "host-scalar"),
        (Some("sim"), "sim"),
        (None, "sim"),
        (Some("cuda"), "err"),
    ] {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["env_var_selects_the_default_backend", "--exact"])
            .env("TENSORFHE_BACKEND_PROBE", expected)
            .env_remove("TENSORFHE_BACKEND");
        if let Some(v) = backend_env {
            cmd.env("TENSORFHE_BACKEND", v);
        }
        let out = cmd.output().expect("spawn env probe child");
        assert!(
            out.status.success(),
            "probe with TENSORFHE_BACKEND={backend_env:?} failed:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}
