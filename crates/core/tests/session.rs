//! The multi-tenant session tier, end to end: fair scheduling under an
//! adversarial heavy client, key-cache residency and its upload stalls,
//! deadline shedding/missing, admission control, and — most load-bearing —
//! bit-identity of the anonymous default with the pre-session service
//! across the whole workers × pipeline-depth matrix.

use proptest::prelude::*;
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::service::{FheRequest, FheService, RequestReport, RequestStatus};
use tensorfhe_core::{CoalescePolicy, SessionConfig};

fn service() -> FheService {
    TensorFhe::builder(&CkksParams::test_small())
        .workers(1)
        .pipeline_depth(1)
        .service()
        .expect("valid service config")
}

/// Busy time of one full-cap batch of `op` at top level — the unit the
/// deadline tests size their budgets in.
fn one_batch_us(op: FheOp) -> f64 {
    let mut probe = service();
    let level = probe.params().max_level();
    let cap = probe.batch_cap();
    probe
        .submit(FheRequest::new(op, level, cap, "probe"))
        .expect("valid");
    probe.drain();
    probe.stats().busy_us
}

#[test]
fn drr_bounds_starvation_under_an_adversarial_heavy_client() {
    let mut svc = service();
    let level = svc.params().max_level();
    let cap = svc.batch_cap();
    let heavy = svc
        .register_session(SessionConfig::new("heavy"))
        .expect("valid session");
    let light = svc
        .register_session(SessionConfig::new("light"))
        .expect("valid session");
    // The adversary floods 40 batches' worth of work before the light
    // client submits anything.
    svc.submit(FheRequest::in_session(FheOp::HMult, level, cap * 40, heavy))
        .expect("valid");
    let light_id = svc
        .submit(FheRequest::in_session(FheOp::HMult, level, cap, light))
        .expect("valid");
    // Equal weights: the light client's single batch must be served
    // within the first fair-share round, not after the flood drains.
    let mut batches_before_light = 0usize;
    loop {
        let done = svc.pump();
        if done.iter().any(|r| r.id == light_id) {
            break;
        }
        batches_before_light += 1;
        assert!(
            batches_before_light <= 3,
            "light client starved behind the heavy flood"
        );
    }
    svc.drain();
    // Everyone's work completes and the per-session ledger matches.
    let s = svc.stats();
    assert_eq!(s.ops_completed, cap * 41);
    assert_eq!(
        s.per_session_ops,
        vec![("heavy".to_string(), cap * 40), ("light".to_string(), cap)]
    );
}

#[test]
fn drr_weights_steer_long_run_service_shares() {
    let mut svc = service();
    let level = svc.params().max_level();
    let cap = svc.batch_cap();
    let a = svc
        .register_session(SessionConfig::new("a").weight(3.0))
        .expect("valid");
    let b = svc
        .register_session(SessionConfig::new("b").weight(1.0))
        .expect("valid");
    svc.submit(FheRequest::in_session(FheOp::HMult, level, cap * 24, a))
        .expect("valid");
    svc.submit(FheRequest::in_session(FheOp::HMult, level, cap * 24, b))
        .expect("valid");
    // Pump just long enough that both are still backlogged, then compare
    // shares: 3:1 quanta must yield roughly 3:1 service.
    let mut pumps = 0;
    while pumps < 16 {
        svc.pump();
        pumps += 1;
    }
    let served: Vec<usize> = svc.sessions().iter().map(|s| s.served_ops()).collect();
    assert!(served[0] > 0 && served[1] > 0, "both sessions progressed");
    let ratio = served[0] as f64 / served[1] as f64;
    assert!(
        (2.0..=4.5).contains(&ratio),
        "3:1 weights should give ~3:1 service mid-drain, got {ratio} ({served:?})"
    );
    svc.drain();
    let s = svc.stats();
    // Equal totals at the end: fairness index returns to 1.
    assert!(
        (s.fairness_index - 1.0).abs() < 1e-12,
        "equal totals must be perfectly fair, got {}",
        s.fairness_index
    );
}

#[test]
fn key_cache_thrash_shows_up_in_hit_rate_evictions_and_the_clock() {
    // A cache that holds only one of the two sessions' key sets: strict
    // alternation thrashes it, and every upload stalls the overlap clock
    // past the pure-compute makespan.
    let params = CkksParams::test_small();
    let set_mb = {
        let probe = TensorFhe::builder(&params).service().expect("valid");
        let mut svc = probe;
        let sid = svc
            .register_session(SessionConfig::new("x"))
            .expect("valid");
        svc.session(sid).expect("registered").key_bytes() / (1 << 20)
    };
    let mut svc = TensorFhe::builder(&params)
        .workers(1)
        .pipeline_depth(1)
        .key_cache_mb((set_mb + 1).max(1))
        .service()
        .expect("valid");
    let level = svc.params().max_level();
    let cap = svc.batch_cap();
    let a = svc
        .register_session(SessionConfig::new("a"))
        .expect("valid");
    let b = svc
        .register_session(SessionConfig::new("b"))
        .expect("valid");
    for _ in 0..4 {
        svc.submit(FheRequest::in_session(FheOp::HMult, level, cap, a))
            .expect("valid");
        svc.submit(FheRequest::in_session(FheOp::HMult, level, cap, b))
            .expect("valid");
    }
    svc.drain();
    let s = svc.stats();
    let cache = svc.key_cache();
    assert!(cache.misses() >= 2, "alternation must miss repeatedly");
    assert!(cache.evictions() >= 1, "a one-set cache must evict");
    assert!(s.key_cache_hit_rate < 1.0);
    assert_eq!(s.key_cache_hits, cache.hits());
    assert_eq!(s.key_cache_misses, cache.misses());
    assert!(s.key_uploads >= 2);
    assert!(s.key_upload_us > 0.0, "uploads must cost clock time");
    assert!(
        s.elapsed_us > s.busy_us,
        "upload stalls extend the makespan past pure compute: elapsed {} vs busy {}",
        s.elapsed_us,
        s.busy_us
    );
    assert!(
        !svc.residency_trace().is_empty(),
        "residency events must be observable"
    );
}

#[test]
fn warm_keys_and_a_big_cache_never_pay_twice() {
    let mut svc = service();
    let level = svc.params().max_level();
    let cap = svc.batch_cap();
    let a = svc
        .register_session(SessionConfig::new("a"))
        .expect("valid");
    for _ in 0..6 {
        svc.submit(FheRequest::in_session(FheOp::HMult, level, cap, a))
            .expect("valid");
    }
    svc.drain();
    let s = svc.stats();
    // Default cache (15% of an A100) holds test_small's set easily: one
    // cold upload, then hits.
    assert_eq!(s.key_cache_misses, 1, "only the cold miss");
    assert_eq!(s.key_uploads, 1);
    assert!(s.key_cache_hit_rate > 0.5);
}

#[test]
fn affinity_coalescing_beats_blind_on_cache_misses() {
    // Four sessions, same (op, level), interleaved quarter-cap requests; a
    // cache holding ~one key set. Blind coalescing packs four key sets
    // into every batch; affinity packs one. The miss counts must reflect
    // that — this is the fig12 effect in unit form.
    let run = |policy: CoalescePolicy| {
        let params = CkksParams::test_small();
        let mut svc = TensorFhe::builder(&params)
            .workers(1)
            .pipeline_depth(1)
            .key_cache_mb(1)
            .coalesce_policy(policy)
            .service()
            .expect("valid");
        let level = svc.params().max_level();
        let cap = svc.batch_cap();
        let quarter = (cap / 4).max(1);
        let sids: Vec<_> = (0..4)
            .map(|i| {
                svc.register_session(SessionConfig::new(format!("s{i}")))
                    .expect("valid")
            })
            .collect();
        for _ in 0..8 {
            for &sid in &sids {
                svc.submit(FheRequest::in_session(FheOp::HMult, level, quarter, sid))
                    .expect("valid");
            }
        }
        svc.drain();
        let s = svc.stats();
        (s.key_cache_misses, s.key_cache_hit_rate, s.ops_completed)
    };
    let (affinity_misses, affinity_rate, ops_a) = run(CoalescePolicy::KeyAffinity);
    let (blind_misses, blind_rate, ops_b) = run(CoalescePolicy::Blind);
    assert_eq!(ops_a, ops_b, "both policies serve the same work");
    assert!(
        affinity_misses < blind_misses,
        "same-session grouping must miss less: affinity {affinity_misses} vs blind {blind_misses}"
    );
    assert!(affinity_rate >= blind_rate);
}

#[test]
fn admission_control_rejects_past_the_caps() {
    let mut svc = TensorFhe::builder(&CkksParams::test_small())
        .workers(1)
        .pipeline_depth(1)
        .global_queue_cap(64)
        .service()
        .expect("valid");
    let level = svc.params().max_level();
    let a = svc
        .register_session(SessionConfig::new("a").queue_cap(10))
        .expect("valid");
    let b = svc
        .register_session(SessionConfig::new("b"))
        .expect("valid");
    // Per-session bound: 10 ops fit, the 11th request is refused.
    let ok = svc
        .submit(FheRequest::in_session(FheOp::HMult, level, 10, a))
        .expect("submit never errors on admission");
    let refused = svc
        .submit(FheRequest::in_session(FheOp::HMult, level, 1, a))
        .expect("submit never errors on admission");
    assert_eq!(svc.status(refused).expect("known"), RequestStatus::Rejected);
    // Global bound: session b alone may queue up to 64 − 10.
    let big = svc
        .submit(FheRequest::in_session(FheOp::HMult, level, 60, b))
        .expect("valid");
    assert_eq!(svc.status(big).expect("known"), RequestStatus::Rejected);
    let fits = svc
        .submit(FheRequest::in_session(FheOp::HMult, level, 54, b))
        .expect("valid");
    // Anonymous traffic is never admission-controlled.
    let anon = svc
        .submit(FheRequest::new(FheOp::HMult, level, 500, "anon"))
        .expect("valid");
    let reports = svc.drain();
    let served: Vec<_> = reports.iter().map(|r| r.id).collect();
    assert!(served.contains(&ok));
    assert!(served.contains(&fits));
    assert!(served.contains(&anon));
    assert!(!served.contains(&refused));
    assert!(!served.contains(&big));
    let s = svc.stats();
    assert_eq!(s.rejected_count, 2);
    // Served work frees queue budget: the once-full session admits again.
    let retry = svc
        .submit(FheRequest::in_session(FheOp::HMult, level, 10, a))
        .expect("valid");
    assert!(matches!(
        svc.status(retry).expect("known"),
        RequestStatus::Queued { .. }
    ));
}

#[test]
fn expired_deadline_work_is_shed_not_run() {
    let batch_us = one_batch_us(FheOp::HMult);
    let mut svc = service();
    let level = svc.params().max_level();
    let cap = svc.batch_cap();
    let rt = svc
        .register_session(SessionConfig::new("rt").deadline_us(batch_us * 0.5))
        .expect("valid");
    // Anonymous work first: its batch advances the clock past the
    // real-time session's whole budget before that session is scheduled.
    svc.submit(FheRequest::new(FheOp::HMult, level, cap, "anon"))
        .expect("valid");
    let doomed = svc
        .submit(FheRequest::in_session(FheOp::HMult, level, 1, rt))
        .expect("valid");
    let reports = svc.drain();
    assert!(
        !reports.iter().any(|r| r.id == doomed),
        "expired request must not produce a report"
    );
    assert_eq!(svc.status(doomed).expect("known"), RequestStatus::Shed);
    let s = svc.stats();
    assert_eq!(s.shed_count, 1);
    assert_eq!(s.ops_completed, cap, "only the anonymous batch ran");
    // Shedding freed the session's queue budget.
    assert_eq!(svc.session(rt).expect("registered").served_ops(), 0);
}

#[test]
fn urgent_deadline_work_ships_partially_filled() {
    // Eight backlogged best-effort sessions ahead of a one-op request:
    // plain DRR serves that request ninth, one fair round in. With a
    // deadline whose slack collapses after ~3 batches, the urgent pass
    // must jump the queue and ship the op alone in a partial batch. Run
    // the identical scenario with and without the deadline and compare
    // how many scheduler steps the hot request waits.
    let batch_us = one_batch_us(FheOp::HMult);
    let run = |deadline: Option<f64>| {
        let mut svc = service();
        let level = svc.params().max_level();
        let cap = svc.batch_cap();
        assert!(cap >= 2, "need a cap a single op underfills");
        let heavies: Vec<_> = (0..8)
            .map(|i| {
                svc.register_session(SessionConfig::new(format!("be{i}")))
                    .expect("valid")
            })
            .collect();
        let mut rt_cfg = SessionConfig::new("rt");
        if let Some(d) = deadline {
            rt_cfg = rt_cfg.deadline_us(d);
        }
        let rt = svc.register_session(rt_cfg).expect("valid");
        for &h in &heavies {
            svc.submit(FheRequest::in_session(FheOp::HMult, level, cap * 4, h))
                .expect("valid");
        }
        let hot = svc
            .submit(FheRequest::in_session(FheOp::HRotate, level, 1, rt))
            .expect("valid");
        let mut completed: Vec<RequestReport> = Vec::new();
        let mut pumps = 0;
        while !completed.iter().any(|r| r.id == hot) {
            completed.extend(svc.pump());
            pumps += 1;
            assert!(pumps <= 32, "hot request never completed");
        }
        let report = completed.iter().find(|r| r.id == hot).expect("completed");
        (pumps, report.batches)
    };
    let (fifo_pumps, fifo_batches) = run(None);
    let (urgent_pumps, urgent_batches) = run(Some(batch_us * 3.9));
    assert_eq!(fifo_batches, 1, "a one-op request is always one batch");
    assert_eq!(
        urgent_batches, 1,
        "urgent work ships alone in one (partial) batch"
    );
    assert!(
        fifo_pumps >= 8,
        "without a deadline the request waits a full DRR round, got {fifo_pumps}"
    );
    assert!(
        urgent_pumps <= 5 && urgent_pumps < fifo_pumps,
        "the urgent pass must pre-empt the fair round: {urgent_pumps} vs {fifo_pumps}"
    );
}

#[test]
fn late_completions_count_as_deadline_misses() {
    let batch_us = one_batch_us(FheOp::HMult);
    let mut svc = service();
    let level = svc.params().max_level();
    let cap = svc.batch_cap();
    // A budget smaller than one batch: the request is scheduled fresh
    // (slack positive at plan time), but its completion — one full batch
    // later — blows the budget. Not shed (it ran), a miss.
    let rt = svc
        .register_session(SessionConfig::new("rt").deadline_us(batch_us * 0.5))
        .expect("valid");
    let id = svc
        .submit(FheRequest::in_session(FheOp::HMult, level, cap, rt))
        .expect("valid");
    let reports = svc.drain();
    assert!(reports.iter().any(|r| r.id == id), "the request ran");
    let s = svc.stats();
    assert_eq!(s.deadline_misses, 1);
    assert_eq!(s.shed_count, 0);
}

#[test]
fn anonymous_traffic_is_bit_identical_across_the_matrix_and_to_fifo() {
    // The acceptance criterion: with no sessions registered, reports and
    // result-bearing stats are identical at every workers × depth point —
    // and identical to a service where the session tier is configured but
    // unused (registered session, zero submissions), proving the session
    // fill path degenerates to FIFO for a lone anonymous bucket.
    let params = CkksParams::test_small();
    let stream = |svc: &mut FheService| {
        let level = svc.params().max_level();
        let cap = svc.batch_cap();
        for i in 0..12 {
            svc.submit(FheRequest::new(
                [FheOp::HMult, FheOp::HRotate, FheOp::Rescale][i % 3],
                level - (i % 2),
                cap / 3 + i,
                format!("c{}", i % 4),
            ))
            .expect("valid");
        }
    };
    let fingerprint = |reports: &[RequestReport], svc: &FheService| {
        let mut v: Vec<u64> = Vec::new();
        for r in reports {
            v.push(r.id.raw());
            v.push(r.queue_us.to_bits());
            v.push(r.report.time_us.to_bits());
            v.push(r.report.energy_j.to_bits());
            v.push(r.report.launches as u64);
        }
        let s = svc.stats();
        v.push(s.ops_completed as u64);
        v.push(s.batches_dispatched as u64);
        v.push(s.busy_us.to_bits());
        v.push(s.energy_j.to_bits());
        v.push(s.mean_queue_us.to_bits());
        v.push(s.ops_per_second.to_bits());
        v
    };
    let mut baseline = None;
    for workers in [1usize, 4] {
        for depth in [1usize, 4] {
            let mut svc = TensorFhe::builder(&params)
                .devices(4)
                .workers(workers)
                .pipeline_depth(depth)
                .service()
                .expect("valid");
            stream(&mut svc);
            let reports = svc.drain();
            let fp = fingerprint(&reports, &svc);
            match &baseline {
                None => baseline = Some(fp),
                Some(b) => assert_eq!(
                    b, &fp,
                    "anonymous results diverged at workers={workers} depth={depth}"
                ),
            }
        }
    }
    // Session tier armed but unused: same fingerprint.
    let mut svc = TensorFhe::builder(&params)
        .devices(4)
        .workers(1)
        .pipeline_depth(1)
        .service()
        .expect("valid");
    svc.register_session(SessionConfig::new("idle"))
        .expect("valid");
    stream(&mut svc);
    let reports = svc.drain();
    assert_eq!(
        baseline.expect("matrix ran"),
        fingerprint(&reports, &svc),
        "an idle session must not perturb anonymous results"
    );
}

#[test]
fn env_var_sets_the_default_key_cache_capacity() {
    // `TENSORFHE_KEY_CACHE_MB` supplies the default capacity and never
    // overrides an explicit `.key_cache_mb(n)`. Same child-process probe
    // pattern as the worker-count knob: env is process-global, so the
    // assertions run in re-exec'd children with the env fixed at spawn.
    if let Ok(expected) = std::env::var("TENSORFHE_KEY_CACHE_PROBE") {
        let params = CkksParams::test_small();
        if expected == "err" {
            let err = TensorFhe::builder(&params)
                .service()
                .expect_err("malformed TENSORFHE_KEY_CACHE_MB must be rejected");
            assert!(matches!(err, tensorfhe_core::CoreError::InvalidConfig(_)));
            return;
        }
        let expected_mb: u64 = expected.parse().expect("probe expectation");
        let svc = TensorFhe::builder(&params).service().expect("valid");
        assert_eq!(svc.key_cache().capacity_bytes(), expected_mb << 20);
        let svc = TensorFhe::builder(&params)
            .key_cache_mb(7)
            .service()
            .expect("valid");
        assert_eq!(
            svc.key_cache().capacity_bytes(),
            7 << 20,
            "builder setting must win over env"
        );
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for (env_val, expected) in [
        (Some("64"), "64"),
        (Some("1"), "1"),
        (Some("0"), "err"),
        (Some("lots"), "err"),
    ] {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["env_var_sets_the_default_key_cache_capacity", "--exact"])
            .env("TENSORFHE_KEY_CACHE_PROBE", expected)
            .env_remove("TENSORFHE_KEY_CACHE_MB");
        if let Some(v) = env_val {
            cmd.env("TENSORFHE_KEY_CACHE_MB", v);
        }
        let out = cmd.output().expect("spawn env probe child");
        assert!(
            out.status.success(),
            "probe with TENSORFHE_KEY_CACHE_MB={env_val:?} failed:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
    // No env, no builder: the default is the VRAM slice.
    let svc = TensorFhe::builder(&CkksParams::test_small())
        .service()
        .expect("valid");
    assert!(svc.key_cache().capacity_bytes() > 0);
}

#[test]
fn session_registration_validates_its_inputs() {
    let mut svc = service();
    for bad in [
        SessionConfig::new(""),
        SessionConfig::new("x").weight(0.0),
        SessionConfig::new("x").weight(-1.0),
        SessionConfig::new("x").weight(f64::NAN),
        SessionConfig::new("x").deadline_us(0.0),
        SessionConfig::new("x").deadline_us(f64::INFINITY),
        SessionConfig::new("x").queue_cap(0),
    ] {
        assert!(
            svc.register_session(bad).is_err(),
            "invalid session config must be rejected"
        );
    }
    // Unknown session handles are invalid requests.
    let level = svc.params().max_level();
    let other = service()
        .register_session(SessionConfig::new("elsewhere"))
        .expect("valid");
    let err = svc
        .submit(FheRequest::in_session(FheOp::HMult, level, 1, other))
        .expect_err("foreign session handle");
    assert!(matches!(err, tensorfhe_core::CoreError::InvalidRequest(_)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Deadline accounting is closed under any stream shape: every issued
    /// request ends Completed, Rejected, or Shed; reports exist exactly
    /// for completions; misses never exceed session completions; and the
    /// per-session served ledger sums to the completed session ops.
    #[test]
    fn deadline_and_admission_accounting_is_closed(
        seed in 0u64..10_000,
        deadline_batches in 1u32..6,
        queue_cap in 4usize..40,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let batch_us = one_batch_us(FheOp::HMult);
        let mut svc = service();
        let level = svc.params().max_level();
        let cap = svc.batch_cap();
        let rt = svc
            .register_session(
                SessionConfig::new("rt")
                    .deadline_us(batch_us * f64::from(deadline_batches) * 0.7)
                    .queue_cap(queue_cap),
            )
            .expect("valid");
        let be = svc
            .register_session(SessionConfig::new("be").weight(2.0))
            .expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = Vec::new();
        let mut reports = Vec::new();
        for i in 0..rng.gen_range(6..18) {
            let count = rng.gen_range(1..=cap);
            let req = match i % 3 {
                0 => FheRequest::in_session(FheOp::HMult, level, count, rt),
                1 => FheRequest::in_session(FheOp::HMult, level, count, be),
                _ => FheRequest::new(FheOp::HMult, level, count, "anon"),
            };
            ids.push(svc.submit(req).expect("submit never errors on admission"));
            if i % 4 == 3 {
                reports.extend(svc.pump());
            }
        }
        reports.extend(svc.drain());
        loop {
            // Shedding can leave later work runnable; drain to a fixpoint.
            let more = svc.drain();
            if more.is_empty() {
                break;
            }
            reports.extend(more);
        }
        let s = svc.stats();
        let mut completed = 0usize;
        for id in &ids {
            match svc.status(*id).expect("issued id") {
                RequestStatus::Completed => completed += 1,
                RequestStatus::Rejected | RequestStatus::Shed => {}
                other => prop_assert!(false, "unsettled request: {other:?}"),
            }
        }
        prop_assert_eq!(completed, reports.len());
        prop_assert_eq!(s.shed_count + s.rejected_count + completed, ids.len());
        prop_assert!(s.deadline_misses <= completed);
        let ledger: usize = svc.sessions().iter().map(|x| x.served_ops()).sum();
        let session_ops: usize = reports
            .iter()
            .filter(|r| r.client == "rt" || r.client == "be")
            .map(|r| r.report.batch)
            .sum();
        prop_assert_eq!(ledger, session_ops);
        // The whole shed/reject/complete stream must also replay clean
        // through the structural schedule verifier.
        let report = tensorfhe_analyze::verify_service(&svc);
        prop_assert!(report.is_clean(), "schedule violations:\n{}", report);
    }
}

#[test]
fn per_session_ops_order_is_registration_order() {
    // The stats ledger is a result-bearing Vec, not a hash map: its
    // order is pinned to session registration order regardless of the
    // alphabet or of which session is served first.
    let mut svc = service();
    let level = svc.params().max_level();
    let zeta = svc
        .register_session(SessionConfig::new("zeta"))
        .expect("valid");
    let alpha = svc
        .register_session(SessionConfig::new("alpha"))
        .expect("valid");
    let mid = svc
        .register_session(SessionConfig::new("mid"))
        .expect("valid");
    // Submit in neither registration nor alphabetical order.
    svc.submit(FheRequest::in_session(FheOp::HMult, level, 3, mid))
        .expect("valid");
    svc.submit(FheRequest::in_session(FheOp::HMult, level, 2, zeta))
        .expect("valid");
    svc.submit(FheRequest::in_session(FheOp::HMult, level, 1, alpha))
        .expect("valid");
    svc.drain();
    assert_eq!(
        svc.stats().per_session_ops,
        vec![
            ("zeta".to_string(), 2),
            ("alpha".to_string(), 1),
            ("mid".to_string(), 3),
        ]
    );
}
