//! Pipelined-scheduler determinism.
//!
//! The in-flight window promises that the pipeline depth changes *when*
//! device work overlaps, never *what* a request is charged: a drain at any
//! depth must produce **bit-identical** `RequestReport`s and the
//! result-bearing `ServiceStats` fields to the strictly synchronous
//! depth-1 drain — ids, completion order, float stats down to the last
//! bit, launch counts, per-kernel tables. Only the schedule-descriptive
//! fields (`pipeline_depth`, `inflight_hwm`, `elapsed_us`,
//! `overlap_fraction`, `pipelined_ops_per_second` — and `workers`, as in
//! the executor suite) may differ, because they name the schedule, not the
//! results. These tests pin that contract across seeded pseudo-random
//! streams, both executor backends, a ragged-queue property suite, the
//! overlap-clock invariants, and mid-drain `status` queries through
//! `pump`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::sched::AdmissionMode;
use tensorfhe_core::service::{FheRequest, FheService, RequestReport, RequestStatus, ServiceStats};

const OPS: [FheOp; 6] = [
    FheOp::HAdd,
    FheOp::HMult,
    FheOp::CMult,
    FheOp::HRotate,
    FheOp::Rescale,
    FheOp::Conjugate,
];

fn service(devices: usize, workers: usize, depth: usize) -> FheService {
    TensorFhe::builder(&CkksParams::test_small())
        .devices(devices)
        .workers(workers)
        .pipeline_depth(depth)
        .service()
        .expect("valid service config")
}

/// Every float as raw bits: equality below means bit-identity, not an
/// epsilon test.
fn report_bits(r: &RequestReport) -> Vec<u64> {
    let mut v = vec![
        r.id.raw(),
        r.client.len() as u64,
        r.level as u64,
        r.queue_us.to_bits(),
        r.batches as u64,
        r.report.batch as u64,
        r.report.time_us.to_bits(),
        r.report.per_op_us.to_bits(),
        r.report.occupancy.to_bits(),
        r.report.energy_j.to_bits(),
        r.report.ops_per_second.to_bits(),
        r.report.ops_per_watt.to_bits(),
        r.report.launches as u64,
    ];
    for (k, t) in &r.report.by_kernel {
        v.extend(k.bytes().map(u64::from));
        v.push(t.to_bits());
    }
    v
}

/// The result-bearing stats fields as raw bits. `pipeline_depth`,
/// `inflight_hwm`, `elapsed_us`, `overlap_fraction`,
/// `pipelined_ops_per_second`, `workers`, `admission`, `lookahead`,
/// `aging_bound`, `reorder_distance` and `head_blocked_us` are
/// deliberately excluded: they describe the schedule the service ran
/// (window depth, admission mode, achieved overlap), not what any
/// request was charged — the overlap-clock invariant tests below and
/// the `ooo` suite pin their behaviour instead.
fn stats_bits(s: &ServiceStats) -> Vec<u64> {
    let mut v = vec![
        s.requests_completed as u64,
        s.ops_completed as u64,
        s.batches_dispatched as u64,
        s.launches as u64,
        s.batch_cap as u64,
        s.devices as u64,
        s.batch_fill.to_bits(),
        s.busy_us.to_bits(),
        s.energy_j.to_bits(),
        s.mean_queue_us.to_bits(),
        s.ops_per_second.to_bits(),
        s.ops_per_watt.to_bits(),
    ];
    v.extend(s.device_busy_us.iter().map(|t| t.to_bits()));
    v.extend(s.device_utilization.iter().map(|u| u.to_bits()));
    v
}

/// Drives one seeded pseudo-random multi-client stream through a service,
/// with a mid-stream drain so queue/clock state is exercised across
/// drains. Counts lean small so many distinct `(op, level)` groups — the
/// pipelining case — appear alongside cap-spanning requests.
fn run_stream(svc: &mut FheService, seed: u64) -> (Vec<RequestReport>, ServiceStats) {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_level = svc.params().max_level();
    let cap = svc.batch_cap();
    let mut reports = Vec::new();
    // Client tags repeat across phases on purpose: chained client streams
    // must hit the independence rule in the second drain too.
    for _phase in 0..2 {
        let requests = rng.gen_range(5..20);
        for i in 0..requests {
            let op = OPS[rng.gen_range(0..OPS.len())];
            let level = rng.gen_range(1..=max_level);
            let count = if rng.gen_bool(0.3) {
                rng.gen_range(cap..=cap * 2)
            } else {
                rng.gen_range(1..=4)
            };
            svc.submit(FheRequest::new(op, level, count, format!("c{}", i % 4)))
                .expect("valid request");
        }
        reports.extend(svc.drain());
    }
    (reports, svc.stats())
}

fn assert_identical(reference: &mut FheService, pipelined: &mut FheService, seed: u64) {
    let (rs, ss) = run_stream(reference, seed);
    let (rt, st) = run_stream(pipelined, seed);
    assert_eq!(rs.len(), rt.len(), "report counts differ at seed {seed}");
    for (a, b) in rs.iter().zip(&rt) {
        assert_eq!(a.client, b.client, "client order differs at seed {seed}");
        assert_eq!(
            report_bits(a),
            report_bits(b),
            "reports diverged at seed {seed}: depth-1 {a:?} vs pipelined {b:?}"
        );
    }
    assert_eq!(
        stats_bits(&ss),
        stats_bits(&st),
        "service stats diverged at seed {seed}: {ss:?} vs {st:?}"
    );
    // Both drains must also replay clean through the structural
    // schedule verifier — bit-identity alone would not catch a legally
    // reordered but overlap-violating clock.
    for (label, svc) in [("reference", &*reference), ("pipelined", &*pipelined)] {
        let report = tensorfhe_analyze::verify_service(svc);
        assert!(
            report.is_clean(),
            "{label} schedule has violations at seed {seed}:\n{report}"
        );
    }
}

#[test]
fn pipelined_drain_is_bit_identical_to_depth_one_across_seeds() {
    for depth in [2usize, 4, 8] {
        for seed in [0u64, 1, 7, 42, 1234] {
            let mut reference = service(4, 1, 1);
            let mut pipelined = service(4, 1, depth);
            assert_eq!(pipelined.pipeline_depth(), depth);
            assert_identical(&mut reference, &mut pipelined, seed);
        }
    }
}

#[test]
fn pipelined_drain_is_bit_identical_across_both_executors() {
    // Depth × executor cross: a depth-4 window over the 4-worker
    // ThreadedPool must still settle to the depth-1 SimExecutor bits —
    // pipelining and host threading compose without touching results.
    for seed in [3u64, 99, 0xBEEF] {
        let mut reference = service(4, 1, 1);
        let mut pipelined = service(4, 4, 4);
        assert_eq!(pipelined.workers(), 4);
        assert_identical(&mut reference, &mut pipelined, seed);
    }
}

#[test]
fn depth_one_overlap_metrics_collapse_to_serial() {
    // The acceptance cornerstone: a depth-1 pipelined drain *is* the
    // serial path — elapsed equals busy bit-for-bit, overlap is exactly
    // zero, the pipelined throughput equals the busy-time throughput.
    let mut svc = service(4, 1, 1);
    let (_, stats) = run_stream(&mut svc, 17);
    assert_eq!(stats.pipeline_depth, 1);
    assert!(stats.inflight_hwm <= 1);
    assert_eq!(stats.elapsed_us.to_bits(), stats.busy_us.to_bits());
    assert_eq!(stats.overlap_fraction.to_bits(), 0.0f64.to_bits());
    assert_eq!(
        stats.pipelined_ops_per_second.to_bits(),
        stats.ops_per_second.to_bits()
    );
}

#[test]
fn deep_window_overlaps_independent_narrow_batches() {
    // Many mutually-incompatible (op, level) groups, one instance each,
    // distinct clients: the serial path runs them one batch at a time on
    // a mostly-idle cluster; a depth-4 window keeps 4 in flight and the
    // makespan drops well below the busy time.
    let build = |depth: usize| {
        let mut svc = service(4, 1, depth);
        let max_level = svc.params().max_level();
        let mut i = 0usize;
        for level in 1..=max_level {
            for op in OPS {
                svc.submit(FheRequest::new(op, level, 1, format!("c{i}")))
                    .expect("valid");
                i += 1;
            }
        }
        svc.drain();
        svc.stats()
    };
    let serial = build(1);
    let deep = build(4);
    // Request accounting is depth-invariant…
    assert_eq!(stats_bits(&serial), stats_bits(&deep));
    // …but the schedule really overlapped.
    assert_eq!(deep.inflight_hwm, 4, "window never filled");
    assert!(
        deep.elapsed_us < deep.busy_us * 0.5,
        "expected substantial overlap: elapsed {} vs busy {}",
        deep.elapsed_us,
        deep.busy_us
    );
    assert!(deep.overlap_fraction > 0.5 && deep.overlap_fraction < 1.0);
    assert!(deep.pipelined_ops_per_second > serial.pipelined_ops_per_second * 1.8);
    // Work conservation: the overlapped schedule still has to fit every
    // shard somewhere — the makespan times the device count bounds the
    // total attributed device time. (`device_busy_us` itself is the
    // depth-invariant canonical shard-slot attribution, so individual
    // entries may exceed the makespan once the scheduler re-places shards
    // onto idle queues.)
    let total_busy: f64 = deep.device_busy_us.iter().sum();
    assert!(
        deep.elapsed_us * deep.devices as f64 >= total_busy * (1.0 - 1e-12),
        "schedule shorter than the work it placed: {} × {} vs {}",
        deep.elapsed_us,
        deep.devices,
        total_busy
    );
}

#[test]
fn chained_client_stream_never_overlaps() {
    // Every request shares one client at one level: program order forbids
    // any two batches in flight, whatever the window depth.
    let mut svc = service(4, 1, 8);
    let level = svc.params().max_level();
    for op in [FheOp::HMult, FheOp::HAdd, FheOp::Rescale, FheOp::HRotate] {
        svc.submit(FheRequest::new(op, level, 2, "alice"))
            .expect("valid");
    }
    svc.drain();
    let s = svc.stats();
    assert_eq!(s.inflight_hwm, 1, "chained stream must serialize");
    assert_eq!(s.elapsed_us.to_bits(), s.busy_us.to_bits());
    assert_eq!(s.overlap_fraction.to_bits(), 0.0f64.to_bits());
}

#[test]
fn pump_exposes_in_flight_status_mid_drain() {
    // `drain` is a loop over `pump`; stepping manually lets a caller
    // observe requests inside submitted-but-unjoined batches. With a
    // depth-4 window over four independent single-instance groups, the
    // first pump fills the window and settles exactly one batch, leaving
    // the other three requests InFlight — not lumped in with Queued.
    // Admission mode is pinned: the counts below assume the in-order
    // window shape regardless of any ambient TENSORFHE_ADMISSION.
    let mut svc = TensorFhe::builder(&CkksParams::test_small())
        .devices(4)
        .workers(1)
        .pipeline_depth(4)
        .admission(AdmissionMode::InOrder)
        .service()
        .expect("valid service config");
    let level = svc.params().max_level();
    let ids: Vec<_> = [FheOp::HMult, FheOp::HAdd, FheOp::Rescale, FheOp::HRotate]
        .into_iter()
        .enumerate()
        .map(|(i, op)| {
            svc.submit(FheRequest::new(op, level, 1, format!("c{i}")))
                .expect("valid")
        })
        .collect();
    // A fifth request chained behind the first client stream (same client,
    // same level, its own op group) stays Queued: its group is blocked by
    // the in-flight window until c0's first batch settles. Note a chained
    // request sharing an *op group* with an independent request would
    // block that whole group instead — batch composition must match the
    // serial path exactly, so the scheduler never carves conflicting
    // requests out of a batch.
    let chained = svc
        .submit(FheRequest::new(FheOp::CMult, level, 1, "c0"))
        .expect("valid");

    let first = svc.pump();
    assert_eq!(first.len(), 1, "one settled batch completes one request");
    assert_eq!(first[0].id, ids[0]);
    for &id in &ids[1..] {
        assert_eq!(
            svc.status(id).expect("known"),
            RequestStatus::InFlight {
                executing: 1,
                remaining: 0
            },
            "unjoined batches must report InFlight"
        );
    }
    assert_eq!(
        svc.status(chained).expect("known"),
        RequestStatus::Queued { remaining: 1 },
        "blocked chained request stays Queued"
    );
    assert_eq!(svc.pending_ops(), 4, "three in flight plus one queued");

    let mut rest = Vec::new();
    loop {
        let step = svc.pump();
        if step.is_empty() {
            break;
        }
        rest.extend(step);
    }
    assert_eq!(rest.len(), 4);
    for &id in ids.iter().chain([&chained]) {
        assert_eq!(svc.status(id).expect("known"), RequestStatus::Completed);
    }

    // Pump-stepped completion must be bit-identical to a one-shot drain of
    // the same stream.
    let mut reference = service(4, 1, 4);
    for (i, op) in [FheOp::HMult, FheOp::HAdd, FheOp::Rescale, FheOp::HRotate]
        .into_iter()
        .enumerate()
    {
        reference
            .submit(FheRequest::new(op, level, 1, format!("c{i}")))
            .expect("valid");
    }
    reference
        .submit(FheRequest::new(FheOp::CMult, level, 1, "c0"))
        .expect("valid");
    let want = reference.drain();
    let got: Vec<_> = first.into_iter().chain(rest).collect();
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(&want) {
        assert_eq!(report_bits(a), report_bits(b), "pump-step drain diverged");
    }
    assert_eq!(stats_bits(&svc.stats()), stats_bits(&reference.stats()));
}

#[test]
fn sustained_pump_load_keeps_the_queue_compacted() {
    // A pump-driven service whose window never empties: one independent
    // request arrives before every pump, so at depth 4 there is always
    // work in flight. Leading tombstones must be reclaimed anyway (take
    // indices rebase mid-flight) — the queue tracks the live requests,
    // not the total ever served. Admission mode is pinned: the in-flight
    // bound below assumes the in-order window shape.
    let mut svc = TensorFhe::builder(&CkksParams::test_small())
        .devices(4)
        .workers(1)
        .pipeline_depth(4)
        .admission(AdmissionMode::InOrder)
        .service()
        .expect("valid service config");
    let max_level = svc.params().max_level();
    let mut completed = 0usize;
    for round in 0..200usize {
        // Two independent arrivals, two settles: the window stays loaded
        // (several batches in flight across pumps) while in-rate matches
        // out-rate, so the only way the queue stays small is compaction.
        for k in 0..2 {
            let op = OPS[(2 * round + k) % OPS.len()];
            let level = 1 + (2 * round + k) % max_level;
            svc.submit(FheRequest::new(op, level, 1, format!("c{round}-{k}")))
                .expect("valid");
        }
        completed += svc.pump().len();
        completed += svc.pump().len();
        assert!(
            svc.queue_slots() <= 16,
            "queue grew a dead prefix under sustained load: {} slots at round {round}",
            svc.queue_slots()
        );
    }
    while !svc.pump().is_empty() {}
    let s = svc.stats();
    assert_eq!(s.requests_completed, 400);
    assert!(
        completed >= 350,
        "steady-state serving should complete most requests inside the rounds: {completed}"
    );
    assert_eq!(
        svc.queue_slots(),
        0,
        "drained queue must be fully reclaimed"
    );
    assert!(s.inflight_hwm >= 2, "sustained load should really pipeline");
}

#[test]
fn env_var_selects_the_default_pipeline_depth() {
    // `TENSORFHE_PIPELINE` mirrors `TENSORFHE_WORKERS`: it supplies the
    // default when the builder does not set one, never overrides an
    // explicit `.pipeline_depth(n)`, and a malformed or zero value is a
    // hard error (a silent depth-1 fallback would void the CI matrix).
    // Env is process-global, so the assertions run in child processes
    // with the env fixed at spawn.
    if let Ok(expected) = std::env::var("TENSORFHE_PIPELINE_PROBE") {
        if expected == "err" {
            let err = TensorFhe::builder(&CkksParams::test_small())
                .devices(4)
                .service()
                .expect_err("malformed TENSORFHE_PIPELINE must be rejected");
            assert!(matches!(err, tensorfhe_core::CoreError::InvalidConfig(_)));
            return;
        }
        let expected: usize = expected.parse().expect("probe expectation");
        let svc = TensorFhe::builder(&CkksParams::test_small())
            .devices(4)
            .service()
            .expect("valid");
        assert_eq!(svc.pipeline_depth(), expected);
        assert_eq!(
            service(4, 1, 2).pipeline_depth(),
            2,
            "builder setting must win over env"
        );
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for (depth_env, expected) in [
        (Some("4"), "4"),
        (Some("2"), "2"),
        (Some("1"), "1"),
        (None, "1"),
        (Some("deep"), "err"),
        (Some("0"), "err"),
    ] {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["env_var_selects_the_default_pipeline_depth", "--exact"])
            .env("TENSORFHE_PIPELINE_PROBE", expected)
            .env_remove("TENSORFHE_PIPELINE");
        if let Some(v) = depth_env {
            cmd.env("TENSORFHE_PIPELINE", v);
        }
        let out = cmd.output().expect("spawn env probe child");
        assert!(
            out.status.success(),
            "probe with TENSORFHE_PIPELINE={depth_env:?} failed:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ragged multi-client streams: any mix of operations, levels, counts
    /// and client interleavings must drain bit-identically under a deep
    /// in-flight window and the strictly synchronous depth-1 path —
    /// including streams whose batches are blocked by chained client
    /// streams, whose requests span several batches, and whose trailing
    /// batches are partially filled.
    #[test]
    fn ragged_streams_drain_identically_at_any_depth(
        requests in 1usize..24,
        depth in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let mut reference = service(4, 1, 1);
        let mut pipelined = service(4, 1, depth);
        let max_level = reference.params().max_level();
        let cap = reference.batch_cap();
        let mut rng = StdRng::seed_from_u64(seed);
        let stream: Vec<FheRequest> = (0..requests)
            .map(|i| {
                let op = OPS[rng.gen_range(0..OPS.len())];
                let level = rng.gen_range(1..=max_level);
                let count = if rng.gen_bool(0.25) {
                    rng.gen_range(cap..=cap + 3)
                } else {
                    rng.gen_range(1..=4)
                };
                FheRequest::new(op, level, count, format!("c{}", i % 3))
            })
            .collect();
        reference.submit_stream(stream.clone()).expect("valid stream");
        pipelined.submit_stream(stream).expect("valid stream");
        let rs = reference.drain();
        let rt = pipelined.drain();
        prop_assert_eq!(rs.len(), rt.len());
        for (a, b) in rs.iter().zip(&rt) {
            prop_assert_eq!(report_bits(a), report_bits(b));
        }
        prop_assert_eq!(stats_bits(&reference.stats()), stats_bits(&pipelined.stats()));
    }
}
