//! Out-of-order scoreboard admission: the adversarial head-blocked
//! fixture (in-order stalls, the scoreboard admits past the block), and
//! the mode's determinism pin — reports and result-bearing stats must be
//! **bit-identical** to in-order admission at every workers × depth
//! corner, because frozen plans replay the exact serial coalescing walk
//! and the reorder buffer settles in serial plan order.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::sched::{AdmissionMode, SchedPolicy};
use tensorfhe_core::service::{FheRequest, FheService, RequestReport, ServiceStats};
use tensorfhe_core::{CoreError, SessionConfig};

const OPS: [FheOp; 5] = [
    FheOp::HMult,
    FheOp::HAdd,
    FheOp::HRotate,
    FheOp::Rescale,
    FheOp::CMult,
];

fn service(admission: AdmissionMode, devices: usize, workers: usize, depth: usize) -> FheService {
    TensorFhe::builder(&CkksParams::test_small())
        .devices(devices)
        .sched(
            SchedPolicy::new()
                .workers(workers)
                .pipeline_depth(depth)
                .admission(admission),
        )
        .service()
        .expect("valid service config")
}

/// Every float as raw bits: equality below means bit-identity.
fn report_bits(r: &RequestReport) -> Vec<u64> {
    let mut v = vec![
        r.id.raw(),
        r.client.len() as u64,
        r.level as u64,
        r.queue_us.to_bits(),
        r.batches as u64,
        r.report.batch as u64,
        r.report.time_us.to_bits(),
        r.report.per_op_us.to_bits(),
        r.report.occupancy.to_bits(),
        r.report.energy_j.to_bits(),
        r.report.ops_per_second.to_bits(),
    ];
    v.extend(r.report.by_kernel.iter().map(|(_, t)| t.to_bits()));
    v
}

/// Result-bearing stats fields as raw bits; schedule-shape fields
/// (`admission`, `reorder_distance`, `head_blocked_us`, overlap clock,
/// window metadata) are excluded — they are *supposed* to differ across
/// admission modes and are pinned by the dedicated tests below.
fn stats_bits(s: &ServiceStats) -> Vec<u64> {
    let mut v = vec![
        s.requests_completed as u64,
        s.ops_completed as u64,
        s.batches_dispatched as u64,
        s.launches as u64,
        s.batch_cap as u64,
        s.devices as u64,
        s.batch_fill.to_bits(),
        s.busy_us.to_bits(),
        s.energy_j.to_bits(),
        s.mean_queue_us.to_bits(),
        s.ops_per_second.to_bits(),
        s.ops_per_watt.to_bits(),
    ];
    v.extend(s.device_busy_us.iter().map(|t| t.to_bits()));
    v.extend(s.device_utilization.iter().map(|u| u.to_bits()));
    v
}

/// One seeded ragged multi-client stream with a mid-stream drain; client
/// tags repeat so chained streams hit the independence rule.
fn run_stream(svc: &mut FheService, seed: u64) -> (Vec<RequestReport>, ServiceStats) {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_level = svc.params().max_level();
    let cap = svc.batch_cap();
    let mut reports = Vec::new();
    for _phase in 0..2 {
        let requests = rng.gen_range(5..20);
        for i in 0..requests {
            let op = OPS[rng.gen_range(0..OPS.len())];
            let level = rng.gen_range(1..=max_level);
            let count = if rng.gen_bool(0.3) {
                rng.gen_range(cap..=cap * 2)
            } else {
                rng.gen_range(1..=4)
            };
            svc.submit(FheRequest::new(op, level, count, format!("c{}", i % 4)))
                .expect("valid request");
        }
        reports.extend(svc.drain());
    }
    (reports, svc.stats())
}

fn assert_identical(inorder: &mut FheService, ooo: &mut FheService, seed: u64) {
    let (rs, ss) = run_stream(inorder, seed);
    let (rt, st) = run_stream(ooo, seed);
    assert_eq!(rs.len(), rt.len(), "report counts differ at seed {seed}");
    for (a, b) in rs.iter().zip(&rt) {
        assert_eq!(a.client, b.client, "client order differs at seed {seed}");
        assert_eq!(
            report_bits(a),
            report_bits(b),
            "reports diverged at seed {seed}: in-order {a:?} vs ooo {b:?}"
        );
    }
    assert_eq!(
        stats_bits(&ss),
        stats_bits(&st),
        "service stats diverged at seed {seed}: {ss:?} vs {st:?}"
    );
}

/// The adversarial stream: `max_level` dependent client pairs — an HMult
/// followed by a Rescale on the same `(client, level)` key. The serial
/// walk head-blocks on every Rescale while its client's HMult is in
/// flight, so in-order admission runs the heavy HMults one at a time;
/// the scoreboard admits later clients' independent HMults past each
/// blocked link and keeps all devices busy. Distinct levels keep every
/// batch width 1 (no cross-client coalescing), so there is real idle
/// capacity for reordering to reclaim.
fn adversarial_stream(max_level: usize) -> Vec<FheRequest> {
    let mut stream = Vec::new();
    for k in 1..=max_level {
        stream.push(FheRequest::new(FheOp::HMult, k, 1, format!("c{k}")));
        stream.push(FheRequest::new(FheOp::Rescale, k, 1, format!("c{k}")));
    }
    stream
}

#[test]
fn scoreboard_overtakes_a_head_blocked_stream() {
    // In-order: every chain link blocks the window until the previous
    // one joins, so the chain serialises the whole prefix. Out-of-order:
    // the scoreboard freezes past the blocked link and admits the
    // independent tenants, keeping the depth-4 window full.
    let mut inorder = service(AdmissionMode::InOrder, 4, 1, 4);
    let mut ooo = service(AdmissionMode::OutOfOrder, 4, 1, 4);
    let max_level = inorder.params().max_level();

    inorder
        .submit_stream(adversarial_stream(max_level))
        .expect("valid stream");
    ooo.submit_stream(adversarial_stream(max_level))
        .expect("valid stream");
    let want = inorder.drain();
    let got = ooo.drain();

    // The determinism pin: reordering admission must not change a single
    // result bit.
    assert_eq!(want.len(), got.len());
    for (a, b) in want.iter().zip(&got) {
        assert_eq!(report_bits(a), report_bits(b), "reports diverged");
    }
    let si = inorder.stats();
    let so = ooo.stats();
    assert_eq!(stats_bits(&si), stats_bits(&so), "stats diverged");

    // The schedule itself must differ: the scoreboard made progress the
    // in-order window could not.
    assert_eq!(si.reorder_distance, 0, "in-order never reorders");
    assert_eq!(si.head_blocked_us, 0.0, "in-order plans admit instantly");
    assert!(
        so.reorder_distance > 0,
        "tenants must admit past the blocked chain link"
    );
    assert!(
        so.head_blocked_us > 0.0,
        "the blocked link must accrue pending time"
    );
    assert!(
        so.elapsed_us < si.elapsed_us,
        "scoreboard admission must shorten the adversarial makespan: \
         ooo {} µs vs in-order {} µs",
        so.elapsed_us,
        si.elapsed_us
    );
    assert!(
        so.overlap_fraction > si.overlap_fraction,
        "overlap must improve: ooo {} vs in-order {}",
        so.overlap_fraction,
        si.overlap_fraction
    );
}

#[test]
fn ooo_drains_bit_identical_across_the_matrix() {
    // The full workers × depth matrix, both admission modes, committed
    // seeds. Depth 1 is the degenerate corner: a one-deep window can
    // never reorder, so out-of-order must replay in-order exactly.
    for workers in [1usize, 4] {
        for depth in [1usize, 2, 4, 8] {
            for seed in [3u64, 7, 1234, 99_991] {
                let mut inorder = service(AdmissionMode::InOrder, 4, workers, depth);
                let mut ooo = service(AdmissionMode::OutOfOrder, 4, workers, depth);
                assert_identical(&mut inorder, &mut ooo, seed);
            }
        }
    }
}

#[test]
fn ooo_session_streams_stay_bit_identical() {
    // Non-deadline sessions: the DRR pick and residency charges run at
    // plan-freeze time along the serial walk, so fairness and key-cache
    // behaviour are identical across admission modes.
    let mut streams = Vec::new();
    for mode in [AdmissionMode::InOrder, AdmissionMode::OutOfOrder] {
        let mut svc = service(mode, 2, 1, 4);
        let heavy = svc
            .register_session(SessionConfig::new("heavy").weight(2.0))
            .expect("valid");
        let light = svc
            .register_session(SessionConfig::new("light"))
            .expect("valid");
        let max_level = svc.params().max_level();
        let mut rng = StdRng::seed_from_u64(17);
        for i in 0..24 {
            let op = OPS[rng.gen_range(0..OPS.len())];
            let level = rng.gen_range(1..=max_level);
            let count = rng.gen_range(1..=4);
            let req = match i % 3 {
                0 => FheRequest::in_session(op, level, count, heavy),
                1 => FheRequest::in_session(op, level, count, light),
                _ => FheRequest::new(op, level, count, "anon"),
            };
            svc.submit(req).expect("valid request");
        }
        let reports: Vec<Vec<u64>> = svc.drain().iter().map(report_bits).collect();
        let stats = svc.stats();
        streams.push((reports, stats_bits(&stats), stats.fairness_index.to_bits()));
    }
    assert_eq!(streams[0].0, streams[1].0, "session reports diverged");
    assert_eq!(streams[0].1, streams[1].1, "session stats diverged");
    assert_eq!(streams[0].2, streams[1].2, "fairness diverged");
}

#[test]
fn deadline_sessions_are_refused_while_ooo_work_is_in_flight() {
    // A deadline session's urgency clock reads settle time, which the
    // scoreboard reorders — so registration demands a fully quiescent
    // scheduler, and a service with a deadline session registered falls
    // back to the in-order fill.
    let mut svc = service(AdmissionMode::OutOfOrder, 2, 1, 4);
    let level = svc.params().max_level();
    for i in 0..6 {
        svc.submit(FheRequest::new(
            FheOp::HMult,
            1 + i % level,
            1,
            format!("c{i}"),
        ))
        .expect("valid request");
    }
    let settled = svc.pump();
    assert!(svc.pending_ops() > settled.len(), "work must be in flight");
    let err = svc
        .register_session(SessionConfig::new("rt").deadline_us(5_000.0))
        .expect_err("deadline registration must wait for quiescence");
    assert!(matches!(err, CoreError::InvalidConfig(_)), "got {err:?}");

    // Non-deadline sessions register fine mid-flight…
    svc.register_session(SessionConfig::new("batch"))
        .expect("non-deadline sessions are settle-order agnostic");

    // …and a drained (quiescent) service accepts the deadline class,
    // then serves it through the in-order fallback.
    while !svc.pump().is_empty() {}
    let rt = svc
        .register_session(SessionConfig::new("rt").deadline_us(5_000.0))
        .expect("quiescent scheduler accepts deadline sessions");
    svc.submit(FheRequest::in_session(FheOp::HMult, level, 2, rt))
        .expect("valid request");
    svc.submit(FheRequest::new(FheOp::HAdd, level, 2, "anon"))
        .expect("valid request");
    let reports = svc.drain();
    assert_eq!(reports.len(), 2, "fallback fill must still serve everyone");
    assert_eq!(svc.stats().deadline_misses, 0);
}

#[test]
fn sustained_ooo_pump_load_keeps_the_queue_compacted() {
    // The out-of-order sibling of the in-order compaction test: frozen
    // pending plans keep their queue slots live (their take indices
    // rebase mid-flight like window batches), so the steady-state bound
    // grows by the lookahead — but the queue must still never accumulate
    // a dead prefix.
    let mut svc = service(AdmissionMode::OutOfOrder, 4, 1, 4);
    let max_level = svc.params().max_level();
    for round in 0..200usize {
        for k in 0..2 {
            let op = OPS[(2 * round + k) % OPS.len()];
            let level = 1 + (2 * round + k) % max_level;
            svc.submit(FheRequest::new(op, level, 1, format!("c{round}-{k}")))
                .expect("valid");
        }
        svc.pump();
        svc.pump();
        assert!(
            svc.queue_slots() <= 32,
            "queue grew a dead prefix under sustained ooo load: {} slots at round {round}",
            svc.queue_slots()
        );
    }
    while !svc.pump().is_empty() {}
    let s = svc.stats();
    assert_eq!(s.requests_completed, 400);
    assert_eq!(
        svc.queue_slots(),
        0,
        "drained queue must be fully reclaimed"
    );
    assert!(s.inflight_hwm >= 2, "sustained load should really pipeline");
}

#[test]
fn env_var_selects_the_admission_mode() {
    // `TENSORFHE_ADMISSION` joins the `TENSORFHE_WORKERS` /
    // `TENSORFHE_PIPELINE` convention: it supplies the default when the
    // builder does not set one, never overrides an explicit
    // `.admission(..)`, and anything but `inorder` / `ooo` is a hard
    // error. Env is process-global, so the assertions run in child
    // processes with the env fixed at spawn.
    if let Ok(expected) = std::env::var("TENSORFHE_ADMISSION_PROBE") {
        if expected == "err" {
            let err = TensorFhe::builder(&CkksParams::test_small())
                .service()
                .expect_err("malformed TENSORFHE_ADMISSION must be rejected");
            assert!(matches!(err, CoreError::InvalidConfig(_)));
            return;
        }
        let want = match expected.as_str() {
            "ooo" => AdmissionMode::OutOfOrder,
            "inorder" => AdmissionMode::InOrder,
            other => panic!("unknown probe expectation {other}"),
        };
        let svc = TensorFhe::builder(&CkksParams::test_small())
            .service()
            .expect("valid");
        assert_eq!(svc.admission(), want);
        let pinned = TensorFhe::builder(&CkksParams::test_small())
            .admission(AdmissionMode::InOrder)
            .service()
            .expect("valid");
        assert_eq!(
            pinned.admission(),
            AdmissionMode::InOrder,
            "builder setting must win over env"
        );
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for (env, expected) in [
        (Some("ooo"), "ooo"),
        (Some("inorder"), "inorder"),
        (Some(" ooo "), "ooo"),
        (None, "inorder"),
        (Some("turbo"), "err"),
        (Some("OOO"), "err"),
        (Some(""), "err"),
    ] {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["env_var_selects_the_admission_mode", "--exact"])
            .env("TENSORFHE_ADMISSION_PROBE", expected)
            .env_remove("TENSORFHE_ADMISSION");
        if let Some(v) = env {
            cmd.env("TENSORFHE_ADMISSION", v);
        }
        let out = cmd.output().expect("spawn env probe child");
        assert!(
            out.status.success(),
            "probe with TENSORFHE_ADMISSION={env:?} failed:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn zero_lookahead_or_aging_bound_is_a_hard_error() {
    for policy in [
        SchedPolicy::new().lookahead(0),
        SchedPolicy::new().aging_bound(0),
    ] {
        let err = TensorFhe::builder(&CkksParams::test_small())
            .sched(policy)
            .service()
            .expect_err("zero scoreboard bounds must be rejected");
        assert!(matches!(err, CoreError::InvalidConfig(_)), "got {err:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ragged multi-client streams: any mix of operations, levels,
    /// counts and client interleavings must drain bit-identically under
    /// out-of-order admission and the in-order reference, at a deep
    /// window and at the synchronous depth-1 corner.
    #[test]
    fn ragged_streams_drain_identically_out_of_order(seed in 0u64..10_000) {
        for depth in [1usize, 4] {
            let mut inorder = service(AdmissionMode::InOrder, 2, 1, depth);
            let mut ooo = service(AdmissionMode::OutOfOrder, 2, 1, depth);
            assert_identical(&mut inorder, &mut ooo, seed);
        }
    }
}
