//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the macro and method surface `crates/bench/benches/kernels.rs`
//! uses — `criterion_group!` / `criterion_main!`, `Criterion::default()`,
//! `bench_function`, `benchmark_group` / `bench_with_input`, `BenchmarkId`
//! and `Bencher::iter` — with a plain wall-clock median instead of
//! criterion's full statistical machinery. Bench targets compile and print
//! per-iteration timings; swapping the path dependency for the crates.io
//! `criterion = "0.5"` requires no code changes.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box;
use std::time::Instant;

/// Identifier for a parameterised benchmark case.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping the median of `samples` runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed().as_secs_f64() * 1e9
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.median_ns = times[times.len() / 2];
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b);
        report(id, b.median_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        println!("group: {group_name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            median_ns: 0.0,
        };
        f(&mut b, input);
        report(&id.name, b.median_ns);
        self
    }

    /// Finishes the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

fn report(name: &str, median_ns: f64) {
    if median_ns >= 1e6 {
        println!("  {name:40} {:12.3} ms", median_ns / 1e6);
    } else if median_ns >= 1e3 {
        println!("  {name:40} {:12.3} µs", median_ns / 1e3);
    } else {
        println!("  {name:40} {median_ns:12.1} ns");
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_time() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("ntt", 1024).to_string(), "ntt/1024");
    }
}
