//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` / `gen_bool` — over a xoshiro256++ generator. Call sites are
//! source-compatible with the real crate; swapping the path dependency for
//! the crates.io `rand = "0.8"` requires no code changes.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion,
    /// matching the convention of the real crate's `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`] — the subset of `rand::Rng` the
/// workspace uses.
pub trait Rng: RngCore {
    /// Samples uniformly from the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps a random word to a uniform `f64` in `[0, 1)` with 53 bits of
/// precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % width) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % width) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                // Clamp guards the pathological rounding case where
                // lo + u·(hi−lo) lands exactly on the excluded endpoint.
                let v = self.start + u * (self.end - self.start);
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// (The real `rand::rngs::StdRng` is a ChaCha block cipher; this one
    /// trades cryptographic strength for zero dependencies. All workspace
    /// uses are statistical / test-seeding, never key material in
    /// production protocols — the CKKS layer takes the RNG as a caller
    /// argument precisely so a hardened generator can be supplied.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..32).filter(|_| {
            StdRng::seed_from_u64(42).gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)
        });
        assert!(same.count() < 32);
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&w));
        }
    }

    #[test]
    fn float_range_is_half_open_and_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&v));
            sum += v;
        }
        assert!((sum / 100_000.0).abs() < 0.01);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
