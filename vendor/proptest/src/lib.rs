//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the surface the workspace's property tests use: the
//! [`proptest!`] macro over named-argument strategies, [`Strategy`] for
//! numeric ranges and [`collection::vec`], [`any`], [`ProptestConfig`] and
//! the `prop_assert*` macros. Swapping the path dependency for the
//! crates.io `proptest = "1"` requires no code changes.
//!
//! # Regression seeds
//!
//! Like the real crate, failing cases are persistable. Every case draws
//! its values from a dedicated `u64` seed; a failure panics with that seed
//! and the instruction to append `cc 0x…` to
//! `proptest-regressions/<test_fn_name>.txt` in the owning crate's root.
//! Committed seed files are replayed *before* the random cases on every
//! run (and therefore on every CI `cargo test`), so once-found
//! counterexamples stay pinned. Lines starting with `#` are comments.
//! There is no shrinking — the persisted seed reproduces the raw case.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration — only the case count is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default.
        Self { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = self.end as u128 - self.start as u128;
                let draw = wide_word(rng) % width;
                (self.start as u128 + draw) as $t
            }
        }
    )*};
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = wide_word(rng) % width;
                ((self.start as i128).wrapping_add(draw as i128)) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize, u128);
impl_int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut StdRng) -> i128 {
        assert!(self.start < self.end, "empty range");
        // Widths up to 2^127 fit in u128 via wrapping subtraction.
        let width = self.end.wrapping_sub(self.start) as u128;
        let draw = wide_word(rng) % width;
        self.start.wrapping_add(draw as i128)
    }
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start + unit as $t * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

fn wide_word(rng: &mut StdRng) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

/// Strategy producing uniformly random values of the whole type.
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over all values of `T` (numeric types only).
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            #[allow(clippy::cast_lossless)]
            fn generate(&self, rng: &mut StdRng) -> $t {
                wide_word(rng) as $t
            }
        }
    )*};
}

impl_any_strategy!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize, i128);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies.
pub mod collection {
    use super::{RngCore, StdRng, Strategy};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open
    /// range.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors of `elem`-generated values with the given length spec.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG (seeded from the test name).
#[must_use]
pub fn test_rng(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(test_seed(test_name))
}

/// Deterministic base seed for a test (FNV-1a over its full path).
#[must_use]
pub fn test_seed(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The seed of one random case: the test's base seed mixed with the case
/// index (splitmix64 finalizer, so neighbouring cases decorrelate).
#[must_use]
pub fn case_seed(base: u64, case: u32) -> u64 {
    let mut z = base ^ (u64::from(case).wrapping_add(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// RNG replaying one persisted or generated case seed.
#[must_use]
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Loads the persisted regression seeds for a test:
/// `<manifest_dir>/proptest-regressions/<test_name>.txt`, one `cc <seed>`
/// line per case (hex `0x…` or decimal), `#`-prefixed comments allowed.
/// A missing file means no regressions.
///
/// # Panics
///
/// Panics on a malformed line — a seed that silently fails to replay
/// would defeat the point of committing it.
#[must_use]
pub fn load_regressions(manifest_dir: &str, test_name: &str) -> Vec<u64> {
    let path = std::path::Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{test_name}.txt"));
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| {
            let seed = line
                .strip_prefix("cc ")
                .and_then(|rest| {
                    let token = rest.split_whitespace().next()?;
                    token.strip_prefix("0x").map_or_else(
                        || token.parse().ok(),
                        |hex| u64::from_str_radix(hex, 16).ok(),
                    )
                })
                .unwrap_or_else(|| {
                    panic!("malformed regression line in {}: {line:?}", path.display())
                });
            seed
        })
        .collect()
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, failing the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!("{left:?} != {right:?}"));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!("{left:?} != {right:?}: {}", format!($($fmt)+)));
        }
    }};
}

/// Declares property tests: each function runs `config.cases` random cases
/// drawn from its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let run_case = |label: &str, seed: u64| {
                    let mut rng = $crate::seeded_rng(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })();
                    if let Err(message) = outcome {
                        panic!(
                            "proptest {} failed at {label} (seed {seed:#018x}): {message}\n\
                             to pin this case, append `cc {seed:#018x}` to \
                             proptest-regressions/{}.txt in the crate root",
                            stringify!($name),
                            stringify!($name),
                        );
                    }
                };
                // Committed counterexamples replay first, on every run.
                let seeds =
                    $crate::load_regressions(env!("CARGO_MANIFEST_DIR"), stringify!($name));
                for (idx, &seed) in seeds.iter().enumerate() {
                    run_case(&format!("regression {}/{}", idx + 1, seeds.len()), seed);
                }
                let base = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    run_case(&format!("case {case}/{}", config.cases), $crate::case_seed(base, case));
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn case_seeds_decorrelate() {
        let base = crate::test_seed("some::test");
        let a = crate::case_seed(base, 0);
        let b = crate::case_seed(base, 1);
        assert_ne!(a, b);
        // Stable across runs (replayability is the whole point).
        assert_eq!(a, crate::case_seed(base, 0));
    }

    #[test]
    fn regression_files_load_and_replay_lines() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("proptest-regressions")).expect("mkdir");
        std::fs::write(
            dir.join("proptest-regressions/some_test.txt"),
            "# a comment\ncc 0x00000000deadbeef\n\ncc 42\n",
        )
        .expect("write");
        let seeds = crate::load_regressions(dir.to_str().expect("utf-8 temp dir"), "some_test");
        assert_eq!(seeds, vec![0xdead_beef, 42]);
        let missing = crate::load_regressions(dir.to_str().expect("utf-8"), "other_test");
        assert!(missing.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "malformed regression line")]
    fn malformed_regression_lines_panic() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-bad-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("proptest-regressions")).expect("mkdir");
        std::fs::write(dir.join("proptest-regressions/bad.txt"), "cc not-a-seed\n").expect("write");
        let _ = crate::load_regressions(dir.to_str().expect("utf-8"), "bad");
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 5u64..17, b in -3i64..4, x in -1.5f64..1.5) {
            prop_assert!((5..17).contains(&a));
            prop_assert!((-3..4).contains(&b));
            prop_assert!((-1.5..1.5).contains(&x));
        }

        #[test]
        fn vectors_respect_length_spec(v in collection::vec(0u64..10, 3usize), w in collection::vec(0u64..10, 1..5)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..5).contains(&w.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn wide_types_generate(x in any::<u128>(), y in -(1i128 << 80)..(1i128 << 80)) {
            prop_assert!(x.count_ones() <= 128);
            prop_assert!((-(1i128 << 80)..(1i128 << 80)).contains(&y));
        }
    }
}
