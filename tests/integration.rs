//! Cross-crate integration: functional CKKS traced through the TensorFHE
//! engine onto the simulated GPU — the full stack of the paper in one test.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensorfhe::ckks::{CkksParams, Evaluator, KeyChain};
use tensorfhe::core::api::{FheOp, TensorFhe};
use tensorfhe::core::engine::{Engine, EngineConfig, Variant};
use tensorfhe::gpu::Profiler;
use tensorfhe::math::Complex64;

/// Engine-level costing of one fixed-width schedule run — what the
/// retired `run_op` shim used to bundle.
fn cost(api: &mut TensorFhe, op: FheOp, level: usize, batch: usize) -> tensorfhe::core::OpReport {
    let events = api.schedule_of(op, level);
    let stats = api.engine_mut().run_schedule(op.name(), &events, batch);
    let power = api.engine().config().device.power_watts;
    tensorfhe::core::OpReport::from_stats(op, batch, power, stats)
}

/// Full-mode execution: real homomorphic math with every kernel costed on
/// the simulated device, then decrypt and check both the value and the
/// profile.
#[test]
fn traced_full_mode_pipeline() {
    let params = CkksParams::toy();
    let engine = Engine::new(EngineConfig::a100(Variant::TensorCore));
    // The engine hands out a context running its own variant: the tensor-core
    // formulation both computes the arithmetic and prices the launches.
    let ctx = engine.make_context(&params).expect("ctx");
    assert_eq!(ctx.ntt_algorithm(), Variant::TensorCore);
    let mut rng = StdRng::seed_from_u64(11);
    let keys = KeyChain::generate(&ctx, &mut rng);

    let tracer = engine.make_tracer(1);
    let mut eval = Evaluator::with_tracer(&ctx, Box::new(tracer));

    let xs = vec![Complex64::new(1.25, 0.0), Complex64::new(-0.5, 0.0)];
    let ct = keys.encrypt(&ctx.encode(&xs, params.scale()).expect("enc"), &mut rng);
    let sq = eval.hmult(&ct, &ct, &keys).expect("hmult");
    let sq = eval.rescale(&sq).expect("rescale");

    // Drain the simulated device and inspect the profile.
    engine.device().borrow_mut().synchronize();
    let profiler = Profiler::new(engine.device().borrow().stats().to_vec());
    assert!(profiler.span_us() > 0.0, "GPU time must have been charged");
    let ops = profiler.time_by_op();
    assert!(
        ops.iter().any(|(o, _)| o == "HMULT"),
        "HMULT scope missing from {ops:?}"
    );

    // The math still decrypts correctly with tracing attached.
    let dec = ctx.decode(&keys.decrypt(&sq)).expect("decode");
    assert!((dec[0].re - 1.5625).abs() < 1e-2);
    assert!((dec[1].re - 0.25).abs() < 1e-2);
}

/// TimingOnly mode and Full mode charge consistent kernel schedules: the
/// synthetic schedule executed by the API layer matches what a real traced
/// execution produces (same launches ⇒ same simulated time).
#[test]
fn timing_only_matches_traced_execution() {
    let params = CkksParams::toy();
    let engine = Engine::new(EngineConfig::a100(Variant::TensorCore));
    let ctx = engine.make_context(&params).expect("ctx");
    let mut rng = StdRng::seed_from_u64(13);
    let keys = KeyChain::generate(&ctx, &mut rng);

    // Full-mode trace of one HMULT.
    let mark = engine.mark();
    {
        let tracer = engine.make_tracer(1);
        let mut eval = Evaluator::with_tracer(&ctx, Box::new(tracer));
        let xs = vec![Complex64::new(0.5, 0.0)];
        let ct = keys.encrypt(&ctx.encode(&xs, params.scale()).expect("enc"), &mut rng);
        let _ = eval.hmult(&ct, &ct, &keys).expect("hmult");
    }
    engine.device().borrow_mut().synchronize();
    let full_stats = engine.window_stats(mark);

    // TimingOnly execution of the same op.
    let mut api = TensorFhe::builder(&params)
        .build()
        .expect("single-device build");
    let report = cost(&mut api, FheOp::HMult, params.max_level(), 1);

    assert_eq!(
        full_stats.launches, report.launches,
        "synthetic schedule must launch exactly the kernels the real op does"
    );
    let rel = (full_stats.time_us - report.time_us).abs() / report.time_us;
    assert!(
        rel < 0.2,
        "timing-only ({}) vs traced ({}) drifted {rel}",
        report.time_us,
        full_stats.time_us
    );
}

/// The three engine variants produce the paper's performance ordering on a
/// real traced workload — and since each engine's context now *computes*
/// with its own formulation, the decrypted results must also agree
/// bit-for-bit across variants (the transforms are bit-identical).
#[test]
fn variant_ordering_holds_for_traced_math() {
    let params = CkksParams::test_small();
    let xs = vec![Complex64::new(0.75, 0.0)];

    let mut times = Vec::new();
    let mut decoded = Vec::new();
    for variant in [Variant::Butterfly, Variant::FourStep, Variant::TensorCore] {
        let engine = Engine::new(EngineConfig::a100(variant));
        let ctx = engine.make_context(&params).expect("ctx");
        assert_eq!(ctx.ntt_algorithm(), variant);
        // Same seed per variant: identical keys and ciphertexts, so any
        // divergence below would be the NTT formulation's fault.
        let mut rng = StdRng::seed_from_u64(17);
        let keys = KeyChain::generate(&ctx, &mut rng);
        let ct = keys.encrypt(&ctx.encode(&xs, params.scale()).expect("enc"), &mut rng);
        let mark = engine.mark();
        let sq = {
            let tracer = engine.make_tracer(64);
            let mut eval = Evaluator::with_tracer(&ctx, Box::new(tracer));
            eval.hmult(&ct, &ct, &keys).expect("hmult")
        };
        engine.device().borrow_mut().synchronize();
        times.push(engine.window_stats(mark).time_us);
        decoded.push(ctx.decode(&keys.decrypt(&sq)).expect("decode")[0]);
    }
    assert!(times[0] > times[1], "NT {} ≤ CO {}", times[0], times[1]);
    assert!(times[1] > times[2], "CO {} ≤ TC {}", times[1], times[2]);
    for d in &decoded {
        assert!(
            (decoded[0].re - d.re).abs() < 1e-12 && (decoded[0].im - d.im).abs() < 1e-12,
            "variants disagree: {decoded:?}"
        );
    }
}

/// Batch scaling through the whole stack: 64 batched HMULTs cost far less
/// than 64× one HMULT (§IV-D).
#[test]
fn operation_level_batching_amortises() {
    let params = CkksParams::test_small();
    let mut api = TensorFhe::builder(&params)
        .build()
        .expect("single-device build");
    let level = params.max_level();
    let single = cost(&mut api, FheOp::HMult, level, 1);
    let batched = cost(&mut api, FheOp::HMult, level, 64);
    assert!(batched.time_us < single.time_us * 64.0 * 0.5);
    assert!(batched.occupancy > single.occupancy);
}

/// The acceptance path of the request-stream redesign: three simulated
/// clients submit interleaved HMULT / HROTATE / RESCALE requests; the
/// service coalesces them into batches and must beat the same stream issued
/// one-by-one through engine-level width-1 schedules (Fig. 14 behaviour).
#[test]
fn request_stream_service_beats_one_by_one_costing() {
    use tensorfhe::core::service::FheRequest;

    let params = CkksParams::test_small();
    let level = params.max_level();

    // Interleaved per-client streams: a mult-heavy client, a rotation
    // client and a rescale client, three rounds each.
    let mut stream = Vec::new();
    for _round in 0..3 {
        stream.push(FheRequest::new(FheOp::HMult, level, 6, "client-a"));
        stream.push(FheRequest::new(FheOp::HRotate, level, 4, "client-b"));
        stream.push(FheRequest::new(FheOp::Rescale, level, 5, "client-c"));
    }
    let total_ops: usize = stream.iter().map(|r| r.count).sum();

    let mut svc = TensorFhe::builder(&params)
        .service()
        .expect("valid service config");
    svc.submit_stream(stream.clone()).expect("valid stream");
    let reports = svc.drain();
    let stats = svc.stats();

    assert_eq!(reports.len(), stream.len(), "every request must complete");
    assert_eq!(stats.ops_completed, total_ops);
    let clients: std::collections::BTreeSet<_> = reports.iter().map(|r| r.client.clone()).collect();
    assert_eq!(clients.len(), 3, "all three clients served");
    assert!(
        stats.batches_dispatched < stream.len(),
        "coalescing must merge requests into fewer batches: {} batches for {} requests",
        stats.batches_dispatched,
        stream.len()
    );

    // Legacy path: identical operations, one at a time, caller-driven.
    let mut api = TensorFhe::builder(&params).build().expect("build");
    let mut legacy_us = 0.0;
    for req in &stream {
        for _ in 0..req.count {
            legacy_us += cost(&mut api, req.op, req.level, 1).time_us;
        }
    }
    let legacy_ops_per_second = total_ops as f64 / (legacy_us * 1e-6);

    assert!(
        stats.ops_per_second > legacy_ops_per_second,
        "service batching must beat one-by-one: {} vs {} ops/s",
        stats.ops_per_second,
        legacy_ops_per_second
    );
}

/// The service front end preserves the cost model: a request stream's total
/// busy time equals the sum of what the legacy API charges for the same
/// batched dispatches.
#[test]
fn service_totals_match_legacy_batched_costs() {
    use tensorfhe::core::service::FheRequest;

    let params = CkksParams::test_small();
    let level = params.max_level();
    let mut svc = TensorFhe::builder(&params)
        .service()
        .expect("valid service config");
    let cap = svc.batch_cap();
    svc.submit(FheRequest::new(FheOp::HMult, level, cap, "a"))
        .expect("valid");
    svc.submit(FheRequest::new(FheOp::HRotate, level, cap, "b"))
        .expect("valid");
    svc.drain();

    let mut api = TensorFhe::builder(&params).build().expect("build");
    let want = cost(&mut api, FheOp::HMult, level, cap).time_us
        + cost(&mut api, FheOp::HRotate, level, cap).time_us;
    let got = svc.stats().busy_us;
    let rel = (got - want).abs() / want;
    assert!(
        rel < 1e-9,
        "service {got} vs legacy {want} µs drifted {rel}"
    );
}
