//! TensorFHE — a reproduction of "TensorFHE: Achieving Practical Computation
//! on Encrypted Data Using GPGPU" (HPCA 2023) in pure Rust, grown into a
//! batching FHE *service*.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`math`] — modular arithmetic, primes, CRT, sampling.
//! * [`ntt`] — butterfly / four-step GEMM / tensor-core NTT variants.
//! * [`gpu`] — the simulated GPGPU substrate (A100/V100/GTX1080Ti models).
//! * [`ckks`] — full-RNS CKKS with hybrid key switching.
//! * [`boot`] — slim bootstrapping.
//! * [`core`] — the TensorFHE engine and the request-stream service:
//!   clients submit [`core::service::FheRequest`]s, the service coalesces
//!   compatible ones into VRAM-feasible batches (§IV-E) and dispatches to
//!   one engine or a multi-GPU cluster.
//! * [`workloads`] — ResNet-20, HELR logistic regression, LSTM and packed
//!   bootstrapping evaluation workloads, executed through the service.
//!
//! # Quick start
//!
//! ```
//! use tensorfhe::ckks::CkksParams;
//! use tensorfhe::core::api::{FheOp, TensorFhe};
//! use tensorfhe::core::service::FheRequest;
//!
//! let params = CkksParams::test_small();
//! let mut svc = TensorFhe::builder(&params).service()?;
//! svc.submit(FheRequest::new(FheOp::HMult, params.max_level(), 16, "demo"))?;
//! let reports = svc.drain();
//! assert_eq!(reports.len(), 1);
//! # Ok::<(), tensorfhe::core::CoreError>(())
//! ```
//!
//! ## Migrating from the seed API
//!
//! `TensorFhe::new(&params, EngineConfig::…)` became
//! [`core::TensorFhe::builder`]; caller-batched `run_op` calls become
//! service `submit`/`drain` streams (the shim is gone — one-off costing
//! calls `schedule_of` + `run_schedule` + `OpReport::from_stats`
//! directly). See the [`core`] crate docs for the full migration table.
//!
//! See `examples/` for runnable entry points — `examples/request_stream.rs`
//! demonstrates the multi-tenant service front end.

pub use tensorfhe_boot as boot;
pub use tensorfhe_ckks as ckks;
pub use tensorfhe_core as core;
pub use tensorfhe_gpu as gpu;
pub use tensorfhe_math as math;
pub use tensorfhe_ntt as ntt;
pub use tensorfhe_workloads as workloads;
