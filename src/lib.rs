//! TensorFHE — a reproduction of "TensorFHE: Achieving Practical Computation
//! on Encrypted Data Using GPGPU" (HPCA 2023) in pure Rust.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`math`] — modular arithmetic, primes, CRT, sampling.
//! * [`ntt`] — butterfly / four-step GEMM / tensor-core NTT variants.
//! * [`gpu`] — the simulated GPGPU substrate (A100/V100/GTX1080Ti models).
//! * [`ckks`] — full-RNS CKKS with hybrid key switching.
//! * [`boot`] — slim bootstrapping.
//! * [`core`] — the TensorFHE engine: kernel layer, API layer, batching.
//! * [`workloads`] — ResNet-20, HELR logistic regression, LSTM and packed
//!   bootstrapping evaluation workloads.
//!
//! See `examples/` for runnable entry points and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use tensorfhe_boot as boot;
pub use tensorfhe_ckks as ckks;
pub use tensorfhe_core as core;
pub use tensorfhe_gpu as gpu;
pub use tensorfhe_math as math;
pub use tensorfhe_ntt as ntt;
pub use tensorfhe_workloads as workloads;
