//! Request-stream serving: many clients, one batching FHE service.
//!
//! §IV-E: the API layer "collects and decomposes the requests for FHE
//! operations from the user applications … automatically generates the best
//! batch size". Three simulated tenants submit interleaved heterogeneous
//! requests; the service coalesces compatible ones into VRAM-feasible
//! batches and reports per-request latency plus aggregate throughput —
//! then the same stream is replayed one-by-one through the legacy
//! `run_op` path to show the batching win (Fig. 14 behaviour).
//!
//! Run with: `cargo run --release --example request_stream`

use tensorfhe::ckks::CkksParams;
use tensorfhe::core::api::{FheOp, TensorFhe};
use tensorfhe::core::service::FheRequest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // N = 2^14 (the HEAX Set-C scale): single operations underfill the
    // A100, which is exactly when service-side coalescing pays (Fig. 14).
    let params = CkksParams::heax_set_c();
    let level = params.max_level();

    // An interleaved stream from three tenants: a neural-net inference
    // tenant (mult-heavy), an aggregation tenant (rotations) and a
    // bookkeeping tenant (rescales).
    let stream: Vec<FheRequest> = (0..8)
        .flat_map(|round| {
            vec![
                FheRequest::new(FheOp::HMult, level, 24, "tenant-nn"),
                FheRequest::new(FheOp::HRotate, level, 16, "tenant-agg"),
                FheRequest::new(FheOp::Rescale, level, 8 + round, "tenant-book"),
            ]
        })
        .collect();
    let total_ops: usize = stream.iter().map(|r| r.count).sum();

    let mut svc = TensorFhe::builder(&params).service()?;
    println!(
        "service: batch cap {} on {} device(s); submitting {} requests / {} ops",
        svc.batch_cap(),
        svc.devices(),
        stream.len(),
        total_ops,
    );
    svc.submit_stream(stream.clone())?;
    let reports = svc.drain();
    let stats = svc.stats();

    println!("\nper-request (first 6 of {}):", reports.len());
    for r in reports.iter().take(6) {
        println!(
            "  #{:3} {:12} {:8} ×{:3}  {:9.2} ms attributed, queued {:9.2} ms, {} batch(es)",
            r.id.raw(),
            r.client,
            r.report.op.name(),
            r.report.batch,
            r.report.time_us / 1e3,
            r.queue_us / 1e3,
            r.batches,
        );
    }
    println!(
        "\nservice totals: {} batches (fill {:4.1}%), {:8.1} ms busy, {:7.0} ops/s, {:6.2} ops/W",
        stats.batches_dispatched,
        stats.batch_fill * 100.0,
        stats.busy_us / 1e3,
        stats.ops_per_second,
        stats.ops_per_watt,
    );

    // The same stream on a 4-device cluster behind the threaded executor:
    // one worker thread per device. Coalesced batches grow 4× and shard,
    // so simulated throughput scales — and because executors are
    // deterministic, a `.workers(1)` serial drain of this stream would be
    // bit-identical.
    let mut cluster = TensorFhe::builder(&params)
        .devices(4)
        .workers(4)
        .service()?;
    cluster.submit_stream(stream.clone())?;
    cluster.drain();
    let cstats = cluster.stats();
    println!(
        "\n4-device / 4-worker service: batch cap {}, {:7.0} ops/s ({:4.2}× the single \
         device), per-device utilization {:?}",
        cstats.batch_cap,
        cstats.ops_per_second,
        cstats.ops_per_second / stats.ops_per_second,
        cstats
            .device_utilization
            .iter()
            .map(|u| (u * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
    );

    // Legacy path: the same stream, one operation at a time, caller-driven.
    let mut api = TensorFhe::builder(&params).build()?;
    let mut legacy_us = 0.0;
    for req in &stream {
        for _ in 0..req.count {
            legacy_us += api.run_op(req.op, req.level, 1).time_us;
        }
    }
    let legacy_ops_s = total_ops as f64 / (legacy_us * 1e-6);
    println!(
        "legacy one-by-one: {:8.1} ms busy, {:7.0} ops/s",
        legacy_us / 1e3,
        legacy_ops_s,
    );
    println!(
        "\nbatching win: {:.1}× throughput from service-side coalescing (Fig. 14)",
        stats.ops_per_second / legacy_ops_s,
    );
    Ok(())
}
