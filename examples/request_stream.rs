//! Request-stream serving: many clients, one batching FHE service.
//!
//! §IV-E: the API layer "collects and decomposes the requests for FHE
//! operations from the user applications … automatically generates the best
//! batch size". Three simulated tenants submit interleaved heterogeneous
//! requests; the service coalesces compatible ones into VRAM-feasible
//! batches and reports per-request latency plus aggregate throughput —
//! then the same stream is replayed one-by-one through the engine-level
//! costing path to show the batching win (Fig. 14 behaviour).
//!
//! Run with: `cargo run --release --example request_stream`

use tensorfhe::ckks::CkksParams;
use tensorfhe::core::api::{FheOp, TensorFhe};
use tensorfhe::core::service::FheRequest;
use tensorfhe::core::{ResidencyEvent, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // N = 2^14 (the HEAX Set-C scale): single operations underfill the
    // A100, which is exactly when service-side coalescing pays (Fig. 14).
    let params = CkksParams::heax_set_c();
    let level = params.max_level();

    // An interleaved stream from three tenants: a neural-net inference
    // tenant (mult-heavy), an aggregation tenant (rotations) and a
    // bookkeeping tenant (rescales).
    let stream: Vec<FheRequest> = (0..8)
        .flat_map(|round| {
            vec![
                FheRequest::new(FheOp::HMult, level, 24, "tenant-nn"),
                FheRequest::new(FheOp::HRotate, level, 16, "tenant-agg"),
                FheRequest::new(FheOp::Rescale, level, 8 + round, "tenant-book"),
            ]
        })
        .collect();
    let total_ops: usize = stream.iter().map(|r| r.count).sum();

    let mut svc = TensorFhe::builder(&params).service()?;
    println!(
        "service: batch cap {} on {} device(s); submitting {} requests / {} ops",
        svc.batch_cap(),
        svc.devices(),
        stream.len(),
        total_ops,
    );
    svc.submit_stream(stream.clone())?;
    let reports = svc.drain();
    let stats = svc.stats();

    println!("\nper-request (first 6 of {}):", reports.len());
    for r in reports.iter().take(6) {
        println!(
            "  #{:3} {:12} {:8} ×{:3}  {:9.2} ms attributed, queued {:9.2} ms, {} batch(es)",
            r.id.raw(),
            r.client,
            r.report.op.name(),
            r.report.batch,
            r.report.time_us / 1e3,
            r.queue_us / 1e3,
            r.batches,
        );
    }
    println!(
        "\nservice totals: {} batches (fill {:4.1}%), {:8.1} ms busy, {:7.0} ops/s, {:6.2} ops/W",
        stats.batches_dispatched,
        stats.batch_fill * 100.0,
        stats.busy_us / 1e3,
        stats.ops_per_second,
        stats.ops_per_watt,
    );

    // The same stream on a 4-device cluster behind the threaded executor:
    // one worker thread per device. Coalesced batches grow 4× and shard,
    // so simulated throughput scales — and because executors are
    // deterministic, a `.workers(1)` serial drain of this stream would be
    // bit-identical.
    let mut cluster = TensorFhe::builder(&params)
        .devices(4)
        .workers(4)
        .service()?;
    cluster.submit_stream(stream.clone())?;
    cluster.drain();
    let cstats = cluster.stats();
    println!(
        "\n4-device / 4-worker service: batch cap {}, {:7.0} ops/s ({:4.2}× the single \
         device), per-device utilization {:?}",
        cstats.batch_cap,
        cstats.ops_per_second,
        cstats.ops_per_second / stats.ops_per_second,
        cstats
            .device_utilization
            .iter()
            .map(|u| (u * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
    );

    // The session tier: the same three tenants, now *registered* clients.
    // Each brings its own switch/rotation key set — the aggregation
    // tenant registered a wide rotation step set, the bookkeeper a
    // minimal one — and the key cache is sized to hold only two of the
    // three footprints, so residency is contended. The nn tenant pays
    // for a 2× fair share; the bookkeeper runs under a latency budget.
    let probe = {
        let mut p = TensorFhe::builder(&params).service()?;
        let id = p.register_session(SessionConfig::new("probe"))?;
        p.session(id).expect("registered").key_bytes()
    };
    let mut tiered = TensorFhe::builder(&params)
        .key_cache_mb((2 * probe) >> 20)
        .service()?;
    let nn = tiered.register_session(SessionConfig::new("tenant-nn").weight(2.0))?;
    let agg = tiered.register_session(SessionConfig::new("tenant-agg").galois_steps(48))?;
    let book = tiered.register_session(
        SessionConfig::new("tenant-book")
            .galois_steps(2)
            .deadline_us(2e6),
    )?;
    for round in 0..8 {
        tiered.submit(FheRequest::in_session(FheOp::HMult, level, 24, nn))?;
        tiered.submit(FheRequest::in_session(FheOp::HRotate, level, 16, agg))?;
        tiered.submit(FheRequest::in_session(
            FheOp::Rescale,
            level,
            8 + round,
            book,
        ))?;
    }
    tiered.drain();
    let tstats = tiered.stats();
    println!("\nsession tier (cache = 2 of 3 key-set footprints):");
    for s in tiered.sessions() {
        println!(
            "  {:12} key set {:6.1} MiB, weight {:3.1}, served {:3} ops",
            s.name(),
            s.key_bytes() as f64 / (1u64 << 20) as f64,
            s.weight(),
            s.served_ops(),
        );
    }
    let evictions = tiered
        .residency_trace()
        .iter()
        .filter(|e| matches!(e, ResidencyEvent::Evict { .. }))
        .count();
    println!(
        "  key cache: {:4.1}% hit rate ({} hits / {} misses), {} evictions, \
         {:.1} ms spent on key uploads",
        tstats.key_cache_hit_rate * 100.0,
        tstats.key_cache_hits,
        tstats.key_cache_misses,
        evictions,
        tstats.key_upload_us / 1e3,
    );
    println!(
        "  fairness (Jain over served ops): {:.3}; deadline misses: {}; \
         shed: {}; rejected: {}",
        tstats.fairness_index, tstats.deadline_misses, tstats.shed_count, tstats.rejected_count,
    );

    // Legacy path: the same stream, one operation at a time, caller-driven
    // through the engine (width-1 schedules, no coalescing).
    let mut api = TensorFhe::builder(&params).build()?;
    let mut legacy_us = 0.0;
    for req in &stream {
        let events = api.schedule_of(req.op, req.level);
        for _ in 0..req.count {
            legacy_us += api
                .engine_mut()
                .run_schedule(req.op.name(), &events, 1)
                .time_us;
        }
    }
    let legacy_ops_s = total_ops as f64 / (legacy_us * 1e-6);
    println!(
        "legacy one-by-one: {:8.1} ms busy, {:7.0} ops/s",
        legacy_us / 1e3,
        legacy_ops_s,
    );
    println!(
        "\nbatching win: {:.1}× throughput from service-side coalescing (Fig. 14)",
        stats.ops_per_second / legacy_ops_s,
    );
    Ok(())
}
