//! Multi-GPU scaling — the paper's §VII future-work extension implemented:
//! sharding the operation-level batch across a cluster of simulated A100s.
//!
//! Run with: `cargo run --release --example multi_gpu_scaling`

use tensorfhe::ckks::{CkksParams, KernelEvent};
use tensorfhe::core::engine::{EngineConfig, Variant};
use tensorfhe::core::MultiGpu;

fn main() {
    // A zero-device cluster is now a typed error instead of a panic.
    assert!(MultiGpu::new(
        &EngineConfig::a100(Variant::TensorCore),
        0,
        &CkksParams::toy()
    )
    .is_err());

    let params = CkksParams::table_v_default();
    let ntt = [KernelEvent::Ntt {
        n: params.n(),
        limbs: params.max_level() + 1,
        inverse: false,
    }];
    let batch = 512usize;

    println!("batched NTT throughput, batch {batch}, sharded across A100s:");
    let mut base = 0.0;
    for devices in [1usize, 2, 4, 8] {
        let mut cluster = MultiGpu::new(&EngineConfig::a100(Variant::TensorCore), devices, &params)
            .expect("device count is non-zero");
        let s = cluster.run_schedule("NTT", &ntt, batch);
        if devices == 1 {
            base = s.ops_per_second;
        }
        println!(
            "  {devices} GPU(s): {:10.0} ops/s  ({:4.2}x, key broadcast {:.1} ms once)",
            s.ops_per_second,
            s.ops_per_second / base,
            cluster.broadcast_us() / 1e3
        );
    }
    println!(
        "\n§VII: \"extending TensorFHE to the platform with multiple GPGPUs would \
         help to increase the batch size\" — batching is embarrassingly parallel, \
         so throughput scales with the cluster while energy per op is constant."
    );
}
