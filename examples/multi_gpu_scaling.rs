//! Multi-GPU scaling — the paper's §VII future-work extension implemented:
//! sharding the operation-level batch across a cluster of simulated A100s.
//!
//! Run with: `cargo run --release --example multi_gpu_scaling`

use tensorfhe::ckks::{CkksParams, KernelEvent};
use tensorfhe::core::engine::{EngineConfig, Variant};
use tensorfhe::core::MultiGpu;

fn main() {
    // A zero-device cluster is now a typed error instead of a panic.
    assert!(MultiGpu::new(
        &EngineConfig::a100(Variant::TensorCore),
        0,
        &CkksParams::toy()
    )
    .is_err());

    let params = CkksParams::table_v_default();
    let ntt = [KernelEvent::Ntt {
        n: params.n(),
        limbs: params.max_level() + 1,
        inverse: false,
    }];
    let batch = 512usize;

    println!("batched NTT throughput, batch {batch}, sharded across A100s:");
    let mut base = 0.0;
    for devices in [1usize, 2, 4, 8] {
        let mut cluster = MultiGpu::new(&EngineConfig::a100(Variant::TensorCore), devices, &params)
            .expect("device count is non-zero");
        let s = cluster.run_schedule("NTT", &ntt, batch);
        if devices == 1 {
            base = s.ops_per_second;
        }
        println!(
            "  {devices} GPU(s): {:10.0} ops/s  ({:4.2}x, key broadcast {:.1} ms once)",
            s.ops_per_second,
            s.ops_per_second / base,
            cluster.broadcast_us() / 1e3
        );
    }

    // The cluster is a thin config over the executor seam: drive the same
    // devices with one host worker thread each and the simulated numbers
    // are bit-identical — threading only changes host wall-clock.
    let mut serial = MultiGpu::new(&EngineConfig::a100(Variant::TensorCore), 4, &params)
        .expect("device count is non-zero");
    let mut threaded =
        MultiGpu::with_workers(&EngineConfig::a100(Variant::TensorCore), 4, 4, &params)
            .expect("device and worker counts are non-zero");
    let s = serial.run_schedule("NTT", &ntt, batch);
    let t = threaded.run_schedule("NTT", &ntt, batch);
    assert_eq!(
        s.wall_us.to_bits(),
        t.wall_us.to_bits(),
        "threaded cluster must be bit-identical to serial"
    );
    println!(
        "\n4 GPUs via {} worker threads: {:.0} ops/s — bit-identical to the serial \
         executor (expected {:.0})",
        threaded.workers(),
        t.ops_per_second,
        s.ops_per_second
    );
    println!(
        "\n§VII: \"extending TensorFHE to the platform with multiple GPGPUs would \
         help to increase the batch size\" — batching is embarrassingly parallel, \
         so throughput scales with the cluster while energy per op is constant."
    );
}
