//! Bootstrapping demo: exhaust a ciphertext's level budget, refresh it with
//! the slim bootstrap (Fig. 6), and keep computing on it.
//!
//! Run with: `cargo run --release --example bootstrap_demo`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensorfhe::boot::sine::SineConfig;
use tensorfhe::boot::{BootConfig, Bootstrapper};
use tensorfhe::ckks::{CkksContext, CkksParams, Evaluator, KeyChain};
use tensorfhe::math::Complex64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CkksParams::new("boot-demo", 1 << 8, 19, 4, 5, 29, 29, 1)?;
    let ctx = CkksContext::new(&params)?;
    let mut rng = StdRng::seed_from_u64(99);
    let mut keys = KeyChain::generate_sparse(&ctx, 8, &mut rng);

    let cfg = BootConfig {
        sine: SineConfig {
            taylor_degree: 7,
            double_angles: 6,
        },
    };
    let boot = Bootstrapper::new(&ctx, cfg);
    println!(
        "generating {} rotation keys…",
        boot.required_rotations().len()
    );
    keys.gen_rotation_keys(&boot.required_rotations(), &mut rng);
    keys.gen_conjugation_key(&mut rng);

    let slots = params.slots();
    let vals: Vec<Complex64> = (0..slots)
        .map(|i| Complex64::new(0.3 * ((i as f64) * 0.21).sin(), 0.0))
        .collect();
    let ct = keys.encrypt(&ctx.encode(&vals, params.scale())?, &mut rng);

    let mut eval = Evaluator::new(&ctx);
    let exhausted = eval.mod_switch_to(&ct, 0)?;
    println!("ciphertext exhausted: level {}", exhausted.level());

    let refreshed = boot.bootstrap(&mut eval, &keys, &exhausted)?;
    println!("after bootstrap:      level {}", refreshed.level());

    let dec = ctx.decode(&keys.decrypt(&refreshed))?;
    let max_err = vals
        .iter()
        .zip(&dec)
        .map(|(a, b)| (*a - *b).norm())
        .fold(0.0f64, f64::max);
    println!("max slot error after refresh: {max_err:.2e}");

    // Prove the refreshed ciphertext is computable: square it.
    let sq = eval.square(&refreshed, &keys)?;
    let sq = eval.rescale(&sq)?;
    let dec = ctx.decode(&keys.decrypt(&sq))?;
    println!(
        "square after refresh: slot 3 = {:.4} (expected {:.4})",
        dec[3].re,
        vals[3].re * vals[3].re
    );
    Ok(())
}
