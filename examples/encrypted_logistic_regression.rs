//! Encrypted logistic-regression training (the HELR workload, §V) at
//! reduced parameters: several gradient-descent steps on encrypted data with
//! encrypted weights, validated against the plaintext trajectory.
//!
//! Run with: `cargo run --release --example encrypted_logistic_regression`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensorfhe::ckks::{CkksContext, CkksParams, Evaluator, KeyChain};
use tensorfhe::workloads::helr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CkksParams::new("helr-example", 1 << 8, 22, 2, 23, 29, 29, 1)?;
    let ctx = CkksContext::new(&params)?;
    let mut rng = StdRng::seed_from_u64(1234);
    let mut keys = KeyChain::generate(&ctx, &mut rng);
    let slots = params.slots();
    keys.gen_rotation_keys(&helr::required_rotations(slots), &mut rng);

    let features = 3usize;
    let data = helr::Dataset::synthetic(&mut rng, slots, features);
    let w0 = vec![0.0f64; features];
    let (xs, ys, mut ws) = helr::encrypt_problem(&ctx, &keys, &data, &w0, &mut rng)?;
    let mut w_clear = w0;

    println!(
        "training on {} encrypted samples, {} features",
        slots, features
    );
    let mut eval = Evaluator::new(&ctx);
    let lr = 1.0;
    for step in 0..2 {
        ws = helr::train_step(&mut eval, &keys, &xs, &ys, &ws, lr, slots, slots)?;
        w_clear = helr::train_step_clear(&data, &w_clear, lr);
        print!("step {step}: encrypted w = [");
        for (j, w_ct) in ws.iter().enumerate() {
            let dec = ctx.decode(&keys.decrypt(w_ct))?;
            print!("{:7.4}", dec[0].re);
            if j + 1 < features {
                print!(", ");
            }
            assert!(
                (dec[0].re - w_clear[j]).abs() < 2e-2,
                "diverged from the plaintext trajectory"
            );
        }
        println!("]   clear w = {w_clear:.4?}");
    }
    println!("encrypted training tracks the plaintext trajectory.");
    Ok(())
}
