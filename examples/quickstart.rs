//! Quickstart: encrypt a vector, compute on it homomorphically, decrypt —
//! and see what the TensorFHE engine would charge for the same operations
//! on the simulated A100.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensorfhe::ckks::{CkksContext, CkksParams, Evaluator, KeyChain};
use tensorfhe::core::api::{FheOp, TensorFhe};
use tensorfhe::core::service::FheRequest;
use tensorfhe::math::Complex64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Functional CKKS at test-sized parameters (N = 2^10).
    let params = CkksParams::test_small();
    let ctx = CkksContext::new(&params)?;
    let mut rng = StdRng::seed_from_u64(7);
    let mut keys = KeyChain::generate(&ctx, &mut rng);
    keys.gen_rotation_keys(&[1], &mut rng);
    let mut eval = Evaluator::new(&ctx);

    let xs = vec![
        Complex64::new(1.5, 0.0),
        Complex64::new(-2.25, 0.0),
        Complex64::new(0.5, 0.0),
    ];
    let ys = vec![
        Complex64::new(2.0, 0.0),
        Complex64::new(0.5, 0.0),
        Complex64::new(-4.0, 0.0),
    ];
    let ct_x = keys.encrypt(&ctx.encode(&xs, params.scale())?, &mut rng);
    let ct_y = keys.encrypt(&ctx.encode(&ys, params.scale())?, &mut rng);

    // (x + y) · x, then rotate one slot left.
    let sum = eval.hadd(&ct_x, &ct_y)?;
    let prod = eval.hmult(&sum, &ct_x, &keys)?;
    let prod = eval.rescale(&prod)?;
    let rotated = eval.hrotate(&prod, 1, &keys)?;

    let dec = ctx.decode(&keys.decrypt(&rotated))?;
    println!("slot values of rot((x+y)*x, 1):");
    for i in 0..3 {
        // Rotation pulls slot i+1 into slot i; slot 3 onward was never
        // encoded, so slot 2 reads back ≈ 0.
        let want = if i + 1 < xs.len() {
            ((xs[i + 1] + ys[i + 1]) * xs[i + 1]).re
        } else {
            0.0
        };
        println!("  slot {i}: {:8.4}  (expected {:8.4})", dec[i].re, want);
    }

    // 2. What would the batched version cost on an A100? Submit the same
    // three operations as a request stream and let the service batch them.
    let paper_params = CkksParams::table_v_default();
    let mut svc = TensorFhe::builder(&paper_params).service()?;
    let level = paper_params.max_level();
    let batch = svc.batch_cap();
    for op in [FheOp::HAdd, FheOp::HMult, FheOp::HRotate] {
        svc.submit(FheRequest::new(op, level, batch, "quickstart"))?;
    }
    for r in svc.drain() {
        println!(
            "simulated A100, batch {}: {:8} = {:9.2} ms ({:7.0} ops/s, occupancy {:4.1}%)",
            r.report.batch,
            r.report.op.name(),
            r.report.time_us / 1e3,
            r.report.ops_per_second,
            r.report.occupancy * 100.0
        );
    }
    let stats = svc.stats();
    println!(
        "service: {} ops in {} batches, fill {:4.1}%, {:7.0} ops/s aggregate",
        stats.ops_completed,
        stats.batches_dispatched,
        stats.batch_fill * 100.0,
        stats.ops_per_second
    );
    Ok(())
}
