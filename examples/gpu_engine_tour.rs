//! A tour of the simulated GPU engine: the three NTT lowerings of Table IV,
//! the batching effect of Fig. 14, and the data-layout ablation of Fig. 9.
//!
//! Run with: `cargo run --release --example gpu_engine_tour`

use tensorfhe::ckks::{CkksParams, KernelEvent};
use tensorfhe::core::engine::{Engine, EngineConfig, Layout, Variant};

fn main() {
    let params = CkksParams::table_v_default();
    let event = [KernelEvent::Ntt {
        n: params.n(),
        limbs: params.max_level() + 1,
        inverse: false,
    }];

    println!("one batched NTT event (45 limbs × batch 16) per variant:");
    for v in [Variant::Butterfly, Variant::FourStep, Variant::TensorCore] {
        let mut e = Engine::new(EngineConfig::a100(v));
        let s = e.run_schedule("NTT", &event, 16);
        println!(
            "  {:14} {:9.1} µs  ({} launches)",
            v.label(),
            s.time_us,
            s.launches
        );
    }

    println!("\nbatching sweep (full TensorFHE, per-op µs):");
    for b in [1usize, 8, 32, 128, 512] {
        let mut e = Engine::new(EngineConfig::a100(Variant::TensorCore));
        let s = e.run_schedule("NTT", &event, b);
        println!("  batch {b:4}: {:9.2} µs/op", s.time_us / b as f64);
    }

    println!("\ndata layout ablation (batch 128 Ele-Add):");
    let add = [KernelEvent::EleAdd {
        n: params.n(),
        limbs: params.max_level() + 1,
    }];
    for (name, layout) in [
        ("(L,B,N) packed", Layout::Lbn),
        ("(B,L,N) strided", Layout::Bln),
    ] {
        let mut e = Engine::new(EngineConfig::a100(Variant::TensorCore).with_layout(layout));
        let s = e.run_schedule("Ele-Add", &add, 128);
        println!("  {name}: {:9.1} µs", s.time_us);
    }
}
